//! Figure 11: memory energy-per-access improvement over Base-open for
//! BuMP configurations sweeping region size {512, 1024, 2048} bytes and
//! density threshold {25, 50, 75, 100}%.
//!
//! Paper: 1KB regions with the 50% threshold maximize the improvement.

use bump_bench::{emit, run, Scale, TextTable};
use bump_sim::{run_experiment_with_config, Preset};
use bump_workloads::Workload;
use bump::BumpConfig;

fn main() {
    let scale = Scale::from_args();
    // Average the improvement over a representative workload trio to
    // keep the sweep tractable (12 design points x 3 workloads).
    let workloads = [
        Workload::WebSearch,
        Workload::DataServing,
        Workload::MediaStreaming,
    ];
    let mut baselines = Vec::new();
    for w in workloads {
        baselines.push(run(Preset::BaseOpen, w, scale).energy_per_access_nj());
    }
    let mut t = TextTable::new(&["region", "25%", "50%", "75%", "100%"]);
    for bytes in [512u64, 1024, 2048] {
        let mut cells = vec![format!("{bytes}B")];
        for pct_threshold in [25, 50, 75, 100] {
            let mut improvement = 0.0;
            for (w, base) in workloads.iter().zip(&baselines) {
                let mut cfg = bump_sim::SystemConfig::paper(Preset::Bump, *w);
                let opts = scale.options();
                cfg.cores = opts.cores;
                if opts.small_llc {
                    cfg = {
                        let mut c = bump_sim::SystemConfig::small(Preset::Bump, *w, opts.cores);
                        c.seed = opts.seed;
                        c
                    };
                }
                cfg.bump = BumpConfig::design_point(bytes, pct_threshold);
                let r = run_experiment_with_config(cfg, opts);
                improvement += (base - r.energy_per_access_nj()) / base / workloads.len() as f64;
            }
            cells.push(format!("{:+.1}%", 100.0 * improvement));
        }
        t.row(cells);
    }
    let mut out = String::from(
        "Figure 11 — memory energy-per-access improvement over Base-open\n\
         for BuMP design points (region size x density threshold),\n\
         averaged over Web Search, Data Serving, Media Streaming.\n\
         Paper: 1KB @ 50% wins (~23% on the full workload set).\n\n",
    );
    out.push_str(&t.render());
    emit("fig11_design_space", &out);
}
