//! Latency/stall comparison between Base-open and BuMP (dev tool).

use bump_bench::experiment::GridArgs;
use bump_sim::{run_experiment, Preset};
use bump_workloads::Workload;

fn main() {
    // Installs the --engine choice as the process default too.
    let scale = GridArgs::from_args().scale;
    for w in [
        Workload::OnlineAnalytics,
        Workload::MediaStreaming,
        Workload::WebSearch,
    ] {
        for p in [Preset::BaseClose, Preset::BaseOpen, Preset::Bump] {
            let r = run_experiment(p, w, scale.options());
            println!(
                "{:<18} {:<11} ipc={:.3} stall/core-kcyc={:.0} dem_rd_lat(mem)={:.0} rd_q_total={} wr={} rd={}",
                w.name(), p.name(), r.ipc(),
                r.load_stall_cycles as f64 / (r.cycles as f64 / 1000.0) / 8.0,
                if r.dram.demand_reads_completed > 0 { r.dram.total_demand_read_latency as f64 / r.dram.demand_reads_completed as f64 } else { 0.0 },
                r.dram.reads_completed, r.traffic.total_writes(), r.traffic.total_reads(),
            );
        }
    }
}
