//! Tables II and III: the architectural and energy parameters in force.
//!
//! These are configuration tables rather than measurements; this binary
//! prints the values the simulator actually uses so they can be checked
//! against the paper line by line.

use bump_bench::emit;
use bump_dram::DramEnergyParams;
use bump_energy::ChipEnergyParams;
use bump_types::{CacheGeometry, CoreParams, DramGeometry, DramTiming};

fn main() {
    let core = CoreParams::paper();
    let timing = DramTiming::ddr3_1600();
    let geom = DramGeometry::paper();
    let chip = ChipEnergyParams::paper();
    let dram = DramEnergyParams::paper();
    let out = format!(
        "Table II — architectural parameters (as configured)\n\
         -----------------------------------------------------\n\
         CMP size              16 cores @ 2.5GHz (22nm)\n\
         Core                  {}-way OoO, {}-entry ROB, {}-entry LSQ\n\
         L1-D                  {}KB, {}-way, 64B blocks, {}-cycle load-to-use, {} MSHRs\n\
         LLC                   {}MB, {}-way, 8 banks, 8-cycle latency, stride prefetcher degree 4\n\
         NOC                   16x8 crossbar, 5 cycles\n\
         Main memory           {}GB, {} channels x {} ranks x {} banks, {}KB row buffer\n\
         DDR3-1600 timing      tCAS-tRCD-tRP-tRAS = {}-{}-{}-{}\n\
                               tRC-tWR-tWTR-tRTP  = {}-{}-{}-{}\n\
                               tRRD-tFAW          = {}-{}\n\
         Queues                64-entry transaction and command queues per channel\n\
         \n\
         Table III — power and energy (as configured)\n\
         -----------------------------------------------------\n\
         Core                  peak dynamic {:.0}mW, leakage {:.0}mW\n\
         LLC                   read/write {:.2}/{:.2} nJ, leakage {:.0}mW\n\
         NOC                   {:.3} nJ/B dynamic, leakage {:.0}mW\n\
         Memory controller     {:.0}mW @ 12.8GB/s (bandwidth-scaled)\n\
         DRAM (per 2GB rank)   background {:.0}-{:.0}mW\n\
                               activation {:.1}nJ, read/write {:.1}/{:.1}nJ\n\
                               I/O read/write {:.1}/{:.1}nJ\n",
        core.retire_width,
        core.rob_entries,
        core.lsq_entries,
        CacheGeometry::l1d().capacity_bytes / 1024,
        CacheGeometry::l1d().ways,
        core.l1_latency,
        core.l1_mshrs,
        CacheGeometry::llc().capacity_bytes / 1024 / 1024,
        CacheGeometry::llc().ways,
        geom.capacity_bytes >> 30,
        geom.channels,
        geom.ranks_per_channel,
        geom.banks_per_rank,
        geom.row_bytes / 1024,
        timing.t_cas,
        timing.t_rcd,
        timing.t_rp,
        timing.t_ras,
        timing.t_rc,
        timing.t_wr,
        timing.t_wtr,
        timing.t_rtp,
        timing.t_rrd,
        timing.t_faw,
        chip.core_peak_dynamic_w * 1000.0,
        chip.core_leakage_w * 1000.0,
        chip.llc_read_nj,
        chip.llc_write_nj,
        chip.llc_leakage_w * 1000.0,
        chip.noc_nj_per_byte,
        chip.noc_leakage_w * 1000.0,
        chip.mc_dynamic_w_at_ref * 1000.0,
        dram.background_idle_w * 1000.0,
        dram.background_active_w * 1000.0,
        dram.activation_nj,
        dram.read_nj,
        dram.write_nj,
        dram.read_io_nj,
        dram.write_io_nj,
    );
    emit("tab23_parameters", &out);
}
