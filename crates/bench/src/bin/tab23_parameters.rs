//! Tables II and III: the architectural and energy parameters in force.
//!
//! These are configuration tables rather than measurements; this binary
//! prints the values the simulator actually uses so they can be checked
//! against the paper line by line.

fn main() {
    bump_bench::figures::run_named("tab23_parameters");
}
