//! Scenario sweep: BuMP vs the open-row baseline across memory specs
//! (DDR3-1600 / DDR4-2400 / LPDDR4-3200) and LLC capacities
//! (512KB / 4 / 8 / 16MB), averaged over the Figure 11 workload trio.
//!
//! `--smoke` runs the CI-sized slice (one workload, DDR4 + LPDDR4 at
//! the paper's 4MB LLC). Standard flags (`--quick`/`--full`,
//! `--threads N`, `--seeds N`, `--engine {cycle,event}`) apply; results
//! land in `results/scenarios.{txt,csv,json}`.

fn main() {
    bump_bench::figures::run_named("scenarios");
}
