//! Figure 9: memory energy per access (activation vs burst/IO) for
//! Base-close, Base-open, Full-region, and BuMP.
//!
//! Paper: Base-open saves 14% over Base-close; BuMP saves 34%/23% over
//! Base-close/Base-open; Full-region is worst-in-class on several
//! workloads due to overfetch.

use bump_bench::{emit, run, Scale, TextTable};
use bump_sim::Preset;
use bump_workloads::Workload;

fn main() {
    let scale = Scale::from_args();
    let mut t = TextTable::new(&[
        "workload", "system", "ACT nJ", "Burst/IO nJ", "total nJ", "vs Base-close",
    ]);
    for w in Workload::all() {
        let mut base_close = 0.0;
        for p in [
            Preset::BaseClose,
            Preset::BaseOpen,
            Preset::FullRegion,
            Preset::Bump,
        ] {
            let r = run(p, w, scale);
            let useful = r.useful_accesses() as f64;
            let act = r.memory_energy.breakdown.activation_nj / useful;
            let bio = r.memory_energy.breakdown.burst_io_nj() / useful;
            let tot = act + bio;
            if p == Preset::BaseClose {
                base_close = tot;
            }
            t.row(vec![
                w.name().into(),
                p.name().into(),
                format!("{act:.1}"),
                format!("{bio:.1}"),
                format!("{tot:.1}"),
                format!("{:+.0}%", 100.0 * (tot - base_close) / base_close),
            ]);
        }
    }
    let mut out =
        String::from("Figure 9 — memory energy per access for various systems.\n\n");
    out.push_str(&t.render());
    emit("fig09_energy_per_access", &out);
}
