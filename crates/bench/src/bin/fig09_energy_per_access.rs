//! Figure 9: memory energy per access (activation vs burst/IO) for
//! Base-close, Base-open, Full-region, and BuMP.
//!
//! Paper: Base-open saves 14% over Base-close; BuMP saves 34%/23% over
//! Base-close/Base-open; Full-region is worst-in-class on several
//! workloads due to overfetch.

fn main() {
    bump_bench::figures::run_named("fig09_energy_per_access");
}
