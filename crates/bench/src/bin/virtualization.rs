//! §VI "Server virtualization": BuMP under a heterogeneous consolidation
//! scenario (a different workload on every core).
//!
//! The paper argues the bulk history table must grow to accommodate the
//! triggering instructions of all co-scheduled workloads (72KB in the
//! extreme one-workload-per-core case). This experiment runs the
//! six-workload mix and compares the paper-sized BHT against a
//! virtualization-sized one.

use bump_bench::{emit, pct, Scale, TextTable};
use bump_sim::{run_experiment_with_config, Preset, SystemConfig};
use bump_workloads::Workload;

fn main() {
    let scale = Scale::from_args();
    let opts = scale.options();
    let mut t = TextTable::new(&[
        "configuration", "BHT entries", "pred reads", "pred writes", "row hit", "E/acc nJ",
    ]);
    for (name, bht_entries) in [
        ("paper-sized BHT", 1024usize),
        ("virtualization BHT", 8192),
    ] {
        let mut cfg = if opts.small_llc {
            SystemConfig::small(Preset::Bump, Workload::WebSearch, opts.cores)
        } else {
            let mut c = SystemConfig::paper(Preset::Bump, Workload::WebSearch);
            c.cores = opts.cores;
            c
        };
        cfg.seed = opts.seed;
        cfg.workload_mix = Some(Workload::all().to_vec());
        cfg.bump.bht_entries = bht_entries;
        let r = run_experiment_with_config(cfg, opts);
        t.row(vec![
            name.into(),
            bht_entries.to_string(),
            pct(r.predicted_read_fraction()),
            pct(r.predicted_write_fraction()),
            pct(r.row_hit_ratio().value()),
            format!("{:.1}", r.energy_per_access_nj()),
        ]);
    }
    let mut out = String::from(
        "Section VI — server virtualization: one workload per core.\n\
         Paper: the BHT must grow to hold all workloads' triggers (72KB\n\
         in the extreme case); prediction otherwise degrades.\n\n",
    );
    out.push_str(&t.render());
    emit("virtualization", &out);
}
