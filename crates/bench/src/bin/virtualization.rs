//! §VI "Server virtualization": BuMP under a heterogeneous consolidation
//! scenario (a different workload on every core).
//!
//! The paper argues the bulk history table must grow to accommodate the
//! triggering instructions of all co-scheduled workloads (72KB in the
//! extreme one-workload-per-core case). This experiment runs the
//! six-workload mix and compares the paper-sized BHT against a
//! virtualization-sized one.

fn main() {
    bump_bench::figures::run_named("virtualization");
}
