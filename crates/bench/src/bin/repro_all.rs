//! Runs the full reproduction suite in-process: every figure/table in
//! the registry, from one deduplicated simulation grid executed on a
//! thread pool, writing each result under `results/`.
//!
//! Usage: `cargo run --release -p bump-bench --bin repro_all [-- --full] [-- --threads N]`
//!
//! Unlike the original subprocess driver, no prior `cargo build` of the
//! sibling binaries is needed, shared cells (e.g. `Base-open × Web
//! Search`, used by six figures) are simulated exactly once, and
//! independent cells run `--threads`-wide (default: all cores).

use bump_bench::experiment::{
    run_grid_instrumented_with, ExperimentGrid, GridArgs, IncrementalCsv, MetricRow, SeedSummary,
};
use bump_bench::figures;
use std::time::Instant;

fn main() {
    let args = GridArgs::from_args();
    let suite = figures::repro_suite();
    let mut grid = ExperimentGrid::new();
    for f in &suite {
        grid.merge((f.grid)(args.scale));
    }
    let expanded = grid.replicate_seeds(args.seeds);
    println!(
        "repro_all: {} unique cells ({} with x{} seed replication) across {} targets, \
         {} worker threads, {} engine",
        grid.len(),
        expanded.len(),
        args.seeds,
        suite.len(),
        args.threads,
        args.engine
    );
    let start = Instant::now();
    // Stream rows to results/repro_all.csv as cells land, so an
    // interrupted --full sweep leaves every finished cell on disk.
    let stream = IncrementalCsv::new("repro_all");
    let all = run_grid_instrumented_with(
        &expanded,
        args.threads,
        args.profile,
        args.telemetry,
        move |_, spec, report| {
            stream.append(&MetricRow::of(spec, report));
        },
    );
    let simulated = start.elapsed();
    if args.profile {
        figures::write_profile("repro_all", &all);
    }
    // Figures render from the replica-0 (calibrated-seed) results;
    // borrow directly in the common single-seed case.
    let selected;
    let results = if args.seeds > 1 {
        selected = all.select(&grid);
        &selected
    } else {
        &all
    };
    for f in &suite {
        println!("\n================ {} ================\n", f.name);
        let out = (f.render)(results, args.scale);
        bump_bench::emit(f.name, &out);
        // Match the standalone binaries: per-figure structured rows too.
        let figure_grid = (f.grid)(args.scale);
        if !figure_grid.is_empty() {
            let figure_expanded = figure_grid.replicate_seeds(args.seeds);
            all.select(&figure_expanded).write_files(f.name);
            if args.seeds > 1 {
                SeedSummary::from_results(&figure_grid, &all, args.seeds).write_files(f.name);
            }
        }
    }
    all.write_files("repro_all");
    all.write_telemetry_files("repro_all");
    if args.seeds > 1 {
        SeedSummary::from_results(&grid, &all, args.seeds).write_files("repro_all");
    }
    println!(
        "\nAll {} reproduction targets completed; {} cells simulated in {:.1}s \
         on {} threads; results/ holds the outputs.",
        suite.len(),
        all.len(),
        simulated.as_secs_f64(),
        args.threads
    );
}
