//! Runs the full reproduction suite: every figure/table binary in this
//! crate, writing each result under `results/`.
//!
//! Usage: `cargo run --release -p bump-bench --bin repro_all [-- --full]`

use std::process::Command;

const BINARIES: &[&str] = &[
    "tab23_parameters",
    "fig01_energy_breakdown",
    "fig02_row_buffer_hit",
    "fig03_traffic_breakdown",
    "fig05_region_density",
    "tab1_late_modifications",
    "fig08_prediction_accuracy",
    "fig09_energy_per_access",
    "fig10_performance",
    "fig11_design_space",
    "fig12_onchip_overheads",
    "fig13_summary",
    "tab4_bump_row_hits",
    "ablations",
    "virtualization",
];

fn main() {
    let me = std::env::current_exe().expect("current exe");
    let dir = me.parent().expect("exe has a parent directory");
    let forward: Vec<String> = std::env::args().skip(1).collect();
    let mut failures = Vec::new();
    for bin in BINARIES {
        let path = dir.join(bin);
        println!("\n================ {bin} ================\n");
        let status = Command::new(&path).args(&forward).status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("{bin} exited with {s}");
                failures.push(*bin);
            }
            Err(e) => {
                eprintln!("failed to launch {}: {e} (build with `cargo build --release -p bump-bench` first)", path.display());
                failures.push(*bin);
            }
        }
    }
    if failures.is_empty() {
        println!("\nAll reproduction targets completed; results/ holds the outputs.");
    } else {
        eprintln!("\nFailed targets: {failures:?}");
        std::process::exit(1);
    }
}
