//! Runs the full reproduction suite in-process: every figure/table in
//! the registry, from one deduplicated simulation grid executed on a
//! thread pool, writing each result under `results/`.
//!
//! Usage: `cargo run --release -p bump-bench --bin repro_all [-- --full] [-- --threads N]`
//!
//! Unlike the original subprocess driver, no prior `cargo build` of the
//! sibling binaries is needed, shared cells (e.g. `Base-open × Web
//! Search`, used by six figures) are simulated exactly once, and
//! independent cells run `--threads`-wide (default: all cores).

use bump_bench::experiment::{run_grid, ExperimentGrid, GridArgs};
use bump_bench::figures;
use std::time::Instant;

fn main() {
    let args = GridArgs::from_args();
    let suite = figures::repro_suite();
    let mut grid = ExperimentGrid::new();
    for f in &suite {
        grid.merge((f.grid)(args.scale));
    }
    println!(
        "repro_all: {} unique cells across {} targets, {} worker threads, {} engine",
        grid.len(),
        suite.len(),
        args.threads,
        args.engine
    );
    let start = Instant::now();
    let results = run_grid(&grid, args.threads);
    let simulated = start.elapsed();
    for f in &suite {
        println!("\n================ {} ================\n", f.name);
        let out = (f.render)(&results, args.scale);
        bump_bench::emit(f.name, &out);
        // Match the standalone binaries: per-figure structured rows too.
        let figure_grid = (f.grid)(args.scale);
        if !figure_grid.is_empty() {
            results.select(&figure_grid).write_files(f.name);
        }
    }
    results.write_files("repro_all");
    println!(
        "\nAll {} reproduction targets completed; {} cells simulated in {:.1}s \
         on {} threads; results/ holds the outputs.",
        suite.len(),
        results.len(),
        simulated.as_secs_f64(),
        args.threads
    );
}
