//! Figure 13: summary comparison across all systems — average row
//! buffer hit ratio and memory energy per access.
//!
//! Paper averages: row hits Base-close < Base-open 21% < SMS 30% <
//! VWQ 36% < SMS+VWQ 44% < BuMP 55% < Ideal 77%; BuMP's energy within
//! 73% of Ideal.

use bump_bench::{emit, paper, pct, run_all_workloads, Scale, TextTable};
use bump_sim::Preset;

fn main() {
    let scale = Scale::from_args();
    let mut t = TextTable::new(&["system", "row hit", "paper", "E/access nJ"]);
    let refs = [
        ("Base-close", 0.03),
        ("Base-open", paper::ROW_HIT_BASE_OPEN),
        ("SMS", paper::ROW_HIT_SMS),
        ("VWQ", paper::ROW_HIT_VWQ),
        ("SMS+VWQ", paper::ROW_HIT_SMS_VWQ),
        ("BuMP", paper::ROW_HIT_BUMP),
    ];
    let mut ideal_hit = 0.0;
    let mut ideal_energy = 0.0;
    for (preset, (name, reference)) in [
        Preset::BaseClose,
        Preset::BaseOpen,
        Preset::Sms,
        Preset::Vwq,
        Preset::SmsVwq,
        Preset::Bump,
    ]
    .into_iter()
    .zip(refs)
    {
        let reports = run_all_workloads(preset, scale);
        let hit: f64 = reports.iter().map(|r| r.row_hit_ratio().value()).sum::<f64>()
            / reports.len() as f64;
        let energy: f64 = reports.iter().map(|r| r.energy_per_access_nj()).sum::<f64>()
            / reports.len() as f64;
        if preset == Preset::BaseOpen {
            ideal_hit = reports
                .iter()
                .map(|r| r.ideal_row_hit_ratio().value())
                .sum::<f64>()
                / reports.len() as f64;
            ideal_energy = reports
                .iter()
                .map(|r| r.ideal_energy_per_access_nj())
                .sum::<f64>()
                / reports.len() as f64;
        }
        t.row(vec![
            name.into(),
            pct(hit),
            pct(reference),
            format!("{energy:.1}"),
        ]);
    }
    t.row(vec![
        "Ideal".into(),
        pct(ideal_hit),
        pct(paper::ROW_HIT_IDEAL),
        format!("{ideal_energy:.1}"),
    ]);
    let mut out = String::from(
        "Figure 13 — summary: average DRAM row buffer hit ratio and\n\
         memory energy per access across all six workloads.\n\n",
    );
    out.push_str(&t.render());
    emit("fig13_summary", &out);
}
