//! Figure 13: summary comparison across all systems — average row
//! buffer hit ratio and memory energy per access.
//!
//! Paper averages: row hits Base-close < Base-open 21% < SMS 30% <
//! VWQ 36% < SMS+VWQ 44% < BuMP 55% < Ideal 77%; BuMP's energy within
//! 73% of Ideal.

fn main() {
    bump_bench::figures::run_named("fig13_summary");
}
