//! Ablation studies for the design choices DESIGN.md calls out.
//!
//! * `rdtt_capacity` — 256- vs 2048-entry trigger/density tables on
//!   Software Testing (the paper's §V.B analysis: coverage 28% → 44%).
//! * `pc_offset` — `(PC, offset)` prediction index vs PC-only (§IV.B's
//!   misalignment argument).
//! * `drt` — with and without the dirty region table (premature/lost
//!   bulk writebacks when density-table conflicts dominate).
//! * `interleaving` — BuMP on region- vs block-level interleaving (the
//!   §IV.D addressing-scheme choice).
//! * `stream_filter` — the one-bulk-read-per-generation filter vs the
//!   paper's plain miss-triggered streaming.

fn main() {
    bump_bench::figures::run_named("ablations");
}
