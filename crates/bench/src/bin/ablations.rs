//! Ablation studies for the design choices DESIGN.md calls out.
//!
//! * `rdtt_capacity` — 256- vs 2048-entry trigger/density tables on
//!   Software Testing (the paper's §V.B analysis: coverage 28% → 44%).
//! * `pc_offset` — `(PC, offset)` prediction index vs PC-only (§IV.B's
//!   misalignment argument).
//! * `drt` — with and without the dirty region table (premature/lost
//!   bulk writebacks when density-table conflicts dominate).
//! * `interleaving` — BuMP on region- vs block-level interleaving (the
//!   §IV.D addressing-scheme choice).
//! * `stream_filter` — the one-bulk-read-per-generation filter vs the
//!   paper's plain miss-triggered streaming.

use bump_bench::{emit, pct, Scale, TextTable};
use bump_sim::{run_experiment_with_config, Preset, RunOptions, SystemConfig};
use bump_types::Interleaving;
use bump_workloads::Workload;

fn cfg(w: Workload, opts: RunOptions) -> SystemConfig {
    let mut c = if opts.small_llc {
        SystemConfig::small(Preset::Bump, w, opts.cores)
    } else {
        let mut c = SystemConfig::paper(Preset::Bump, w);
        c.cores = opts.cores;
        c
    };
    c.seed = opts.seed;
    c
}

fn main() {
    let scale = Scale::from_args();
    let opts = scale.options();
    let mut t = TextTable::new(&[
        "ablation", "workload", "variant", "pred reads", "pred writes", "row hit", "E/acc nJ", "IPC",
    ]);
    let mut row = |name: &str, w: Workload, variant: &str, c: SystemConfig| {
        let r = run_experiment_with_config(c, opts);
        t.row(vec![
            name.into(),
            w.name().into(),
            variant.into(),
            pct(r.predicted_read_fraction()),
            pct(r.predicted_write_fraction()),
            pct(r.row_hit_ratio().value()),
            format!("{:.1}", r.energy_per_access_nj()),
            format!("{:.3}", r.ipc()),
        ]);
    };

    // RDTT capacity on Software Testing.
    let w = Workload::SoftwareTesting;
    row("rdtt_capacity", w, "256+256 (paper)", cfg(w, opts));
    let mut big = cfg(w, opts);
    big.bump.trigger_entries = 2048;
    big.bump.density_entries = 2048;
    row("rdtt_capacity", w, "2048+2048", big);

    // (PC, offset) vs PC-only indexing, on a misalignment-heavy workload.
    let w = Workload::SoftwareTesting; // lowest align_prob
    row("pc_offset", w, "(PC, offset)", cfg(w, opts));
    let mut pconly = cfg(w, opts);
    pconly.bump.pc_only_indexing = true;
    row("pc_offset", w, "PC only", pconly);

    // DRT on/off, on a write-heavy workload.
    let w = Workload::DataServing;
    row("drt", w, "DRT 1024 (paper)", cfg(w, opts));
    let mut nodrt = cfg(w, opts);
    nodrt.bump.drt_entries = 0;
    row("drt", w, "no DRT", nodrt);

    // Interleaving under BuMP.
    let w = Workload::WebSearch;
    row("interleaving", w, "region (paper)", cfg(w, opts));
    let mut blk = cfg(w, opts);
    blk.dram.interleaving = Interleaving::Block;
    row("interleaving", w, "block", blk);

    // Stream filter.
    let w = Workload::MediaStreaming;
    row("stream_filter", w, "per-generation filter", cfg(w, opts));
    let mut nofilter = cfg(w, opts);
    nofilter.bump.stream_filter_entries = 0;
    row("stream_filter", w, "none (plain miss-trigger)", nofilter);

    let mut out = String::from("Ablation studies (BuMP design choices).\n\n");
    out.push_str(&t.render());
    emit("ablations", &out);
}
