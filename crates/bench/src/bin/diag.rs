//! Diagnostic deep-dive for one workload × preset (development tool).

use bump_bench::experiment::GridArgs;
use bump_sim::{run_experiment, Preset};
use bump_types::TrafficClass;
use bump_workloads::Workload;

fn main() {
    // Installs the --engine choice as the process default too.
    let scale = GridArgs::from_args().scale;
    for w in [
        Workload::MediaStreaming,
        Workload::OnlineAnalytics,
        Workload::DataServing,
    ] {
        let r = run_experiment(Preset::Bump, w, scale.options());
        let b = r.bump.unwrap();
        println!("== {} ==", w.name());
        println!(
            "bulk_read triggers: {}  (bht inserts via terminations: {} high of {})",
            b.bulk_reads, b.high_density_terminations, b.terminations
        );
        println!("spec dropped (mshr): {}", r.spec_dropped);
        println!(
            "fills demand={} stride={} bulk={} ",
            r.llc.fills_by_class.get(TrafficClass::Demand),
            r.llc.fills_by_class.get(TrafficClass::StridePrefetch),
            r.llc.fills_by_class.get(TrafficClass::BulkRead)
        );
        println!(
            "covered bulk={} late={} overfetch={} | covered stride={} late={} ovf={}",
            r.llc.covered.get(TrafficClass::BulkRead),
            r.llc.covered_late.get(TrafficClass::BulkRead),
            r.llc.overfetch.get(TrafficClass::BulkRead),
            r.llc.covered.get(TrafficClass::StridePrefetch),
            r.llc.covered_late.get(TrafficClass::StridePrefetch),
            r.llc.overfetch.get(TrafficClass::StridePrefetch)
        );
        println!(
            "traffic: dem_load={} dem_store={} stride={} bulk={} wb={} eager={}",
            r.traffic.demand_load_reads,
            r.traffic.demand_store_reads,
            r.traffic.stride_reads,
            r.traffic.bulk_reads,
            r.traffic.demand_writebacks,
            r.traffic.eager_writebacks
        );
        println!(
            "llc: spec_lookups={} spec_hits={} mshr_stalls={}",
            r.llc.speculative_lookups, r.llc.speculative_hits, r.llc.mshr_stalls
        );
    }
}
// (extended below via diag2)
