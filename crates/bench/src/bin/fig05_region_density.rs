//! Figure 5: region access density for 1KB regions.
//!
//! Each DRAM read/write is binned by the density band of its region
//! (low <25%, medium 25–50%, high ≥50% of blocks touched before the
//! first eviction). Paper: 57–75% of reads and 62–86% of writes fall in
//! high-density regions.

fn main() {
    bump_bench::figures::run_named("fig05_region_density");
}
