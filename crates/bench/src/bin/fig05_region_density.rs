//! Figure 5: region access density for 1KB regions.
//!
//! Each DRAM read/write is binned by the density band of its region
//! (low <25%, medium 25–50%, high ≥50% of blocks touched before the
//! first eviction). Paper: 57–75% of reads and 62–86% of writes fall in
//! high-density regions.

use bump_bench::{emit, pct, run, Scale, TextTable};
use bump_sim::Preset;
use bump_workloads::Workload;

fn main() {
    let scale = Scale::from_args();
    let mut t = TextTable::new(&[
        "workload", "R low", "R med", "R high", "W low", "W med", "W high",
    ]);
    for w in Workload::all() {
        let r = run(Preset::BaseOpen, w, scale);
        let rh = r.density.read_histogram();
        let wh = r.density.write_histogram();
        t.row(vec![
            w.name().into(),
            pct(rh[0]),
            pct(rh[1]),
            pct(rh[2]),
            pct(wh[0]),
            pct(wh[1]),
            pct(wh[2]),
        ]);
    }
    let mut out = String::from(
        "Figure 5 — region access density (1KB regions) on the baseline.\n\
         Paper: reads high-density 57-75% (avg 66%); writes 62-86% (avg 73%).\n\n",
    );
    out.push_str(&t.render());
    emit("fig05_region_density", &out);
}
