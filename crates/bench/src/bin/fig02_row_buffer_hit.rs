//! Figure 2: DRAM row-buffer hit ratio of Base, SMS, VWQ, and Ideal.
//!
//! Paper averages: Base-open 21%, SMS 30%, VWQ 36%, Ideal 77%.

use bump_bench::{emit, paper, pct, run, Scale, TextTable};
use bump_sim::Preset;
use bump_workloads::Workload;

fn main() {
    let scale = Scale::from_args();
    let mut t = TextTable::new(&["workload", "Base", "SMS", "VWQ", "Ideal"]);
    let mut avg = [0.0f64; 4];
    for w in Workload::all() {
        let base = run(Preset::BaseOpen, w, scale);
        let sms = run(Preset::Sms, w, scale);
        let vwq = run(Preset::Vwq, w, scale);
        let vals = [
            base.row_hit_ratio().value(),
            sms.row_hit_ratio().value(),
            vwq.row_hit_ratio().value(),
            base.ideal_row_hit_ratio().value(),
        ];
        for (a, v) in avg.iter_mut().zip(vals) {
            *a += v / 6.0;
        }
        t.row(vec![
            w.name().into(),
            pct(vals[0]),
            pct(vals[1]),
            pct(vals[2]),
            pct(vals[3]),
        ]);
    }
    t.row(vec![
        "AVERAGE".into(),
        pct(avg[0]),
        pct(avg[1]),
        pct(avg[2]),
        pct(avg[3]),
    ]);
    t.row(vec![
        "paper avg".into(),
        pct(paper::ROW_HIT_BASE_OPEN),
        pct(paper::ROW_HIT_SMS),
        pct(paper::ROW_HIT_VWQ),
        pct(paper::ROW_HIT_IDEAL),
    ]);
    let mut out = String::from("Figure 2 — DRAM row buffer hit ratio of various systems.\n\n");
    out.push_str(&t.render());
    emit("fig02_row_buffer_hit", &out);
}
