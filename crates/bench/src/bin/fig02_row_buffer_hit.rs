//! Figure 2: DRAM row-buffer hit ratio of Base, SMS, VWQ, and Ideal.
//!
//! Paper averages: Base-open 21%, SMS 30%, VWQ 36%, Ideal 77%.

fn main() {
    bump_bench::figures::run_named("fig02_row_buffer_hit");
}
