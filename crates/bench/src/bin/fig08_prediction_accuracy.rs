//! Figure 8: BuMP prediction accuracy for DRAM reads (left) and writes
//! (right), compared against the Full-region strawman.
//!
//! Paper: BuMP predicts 45–55% of reads (28% for Software Testing) at
//! 5–22% overfetch; Full-region reaches 63% coverage but at 4.3×
//! overfetch. BuMP predicts 63% of writes with <10% extra writebacks;
//! Full-region predicts 73% at 22% extra.

fn main() {
    bump_bench::figures::run_named("fig08_prediction_accuracy");
}
