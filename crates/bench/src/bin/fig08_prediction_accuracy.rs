//! Figure 8: BuMP prediction accuracy for DRAM reads (left) and writes
//! (right), compared against the Full-region strawman.
//!
//! Paper: BuMP predicts 45–55% of reads (28% for Software Testing) at
//! 5–22% overfetch; Full-region reaches 63% coverage but at 4.3×
//! overfetch. BuMP predicts 63% of writes with <10% extra writebacks;
//! Full-region predicts 73% at 22% extra.

use bump_bench::{emit, pct, run, Scale, TextTable};
use bump_sim::Preset;
use bump_workloads::Workload;

fn main() {
    let scale = Scale::from_args();
    let mut t = TextTable::new(&[
        "workload", "system", "pred reads", "overfetch", "pred writes", "extra wbs",
    ]);
    for w in Workload::all() {
        for p in [Preset::FullRegion, Preset::Bump] {
            let r = run(p, w, scale);
            t.row(vec![
                w.name().into(),
                p.name().into(),
                pct(r.predicted_read_fraction()),
                pct(r.read_overfetch_fraction()),
                pct(r.predicted_write_fraction()),
                pct(r.extra_writeback_fraction()),
            ]);
        }
    }
    let mut out = String::from(
        "Figure 8 — prediction accuracy for DRAM reads and writes.\n\
         ('pred' = fraction of useful traffic fetched/written in bulk\n\
         ahead of demand; overfetch/extra relative to useful traffic.)\n\n",
    );
    out.push_str(&t.render());
    emit("fig08_prediction_accuracy", &out);
}
