//! Table I: fraction of cache blocks of a high-density modified region
//! that are modified after its first LLC eviction.
//!
//! Paper: 3–11% (average 8%) — the first dirty eviction is a good
//! indicator that the coarse-grained object is done being written.

fn main() {
    bump_bench::figures::run_named("tab1_late_modifications");
}
