//! Table I: fraction of cache blocks of a high-density modified region
//! that are modified after its first LLC eviction.
//!
//! Paper: 3–11% (average 8%) — the first dirty eviction is a good
//! indicator that the coarse-grained object is done being written.

use bump_bench::{emit, paper, pct, run, Scale, TextTable};
use bump_sim::Preset;
use bump_workloads::Workload;

fn main() {
    let scale = Scale::from_args();
    let mut t = TextTable::new(&["workload", "measured", "paper"]);
    for (w, (_, reference)) in Workload::all().into_iter().zip(paper::TABLE1_LATE_MOD) {
        let r = run(Preset::BaseOpen, w, scale);
        t.row(vec![
            w.name().into(),
            pct(r.density.late_modification_fraction()),
            pct(reference),
        ]);
    }
    let mut out = String::from(
        "Table I — blocks of a high-density modified region modified\n\
         after the region's first LLC eviction.\n\n",
    );
    out.push_str(&t.render());
    emit("tab1_late_modifications", &out);
}
