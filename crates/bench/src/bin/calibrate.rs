//! Calibration sweep: key metrics for every preset × workload.
//!
//! Not a paper figure — a development tool for checking that the
//! synthetic workloads land in the paper's characterization bands.

use bump_bench::{pct, run, Scale, TextTable};
use bump_sim::Preset;
use bump_workloads::Workload;

fn main() {
    let scale = Scale::from_args();
    let mut t = TextTable::new(&[
        "workload", "preset", "IPC", "rowhit", "ideal", "E/acc nJ", "wr%", "rd-high", "wr-high",
        "predR", "ovfR", "predW", "lateW", "tbl1",
    ]);
    for w in Workload::all() {
        for p in [
            Preset::BaseClose,
            Preset::BaseOpen,
            Preset::Sms,
            Preset::Vwq,
            Preset::SmsVwq,
            Preset::Bump,
            Preset::FullRegion,
        ] {
            let r = run(p, w, scale);
            t.row(vec![
                w.name().into(),
                p.name().into(),
                format!("{:.2}", r.ipc()),
                pct(r.row_hit_ratio().value()),
                pct(r.ideal_row_hit_ratio().value()),
                format!("{:.1}", r.energy_per_access_nj()),
                pct(r.traffic.write_fraction()),
                pct(r.density.read_high_fraction()),
                pct(r.density.write_high_fraction()),
                pct(r.predicted_read_fraction()),
                pct(r.read_overfetch_fraction()),
                pct(r.predicted_write_fraction()),
                pct(r.extra_writeback_fraction()),
                pct(r.density.late_modification_fraction()),
            ]);
        }
    }
    println!("{}", t.render());
}
