//! Calibration sweep: key metrics for every preset × workload.
//!
//! Not a paper figure — a development tool for checking that the
//! synthetic workloads land in the paper's characterization bands.

fn main() {
    bump_bench::figures::run_named("calibrate");
}
