//! The parallel experiment framework behind every figure/table binary.
//!
//! The reproduction's figures all do the same thing: run the simulator
//! over some preset × workload product (occasionally with a customized
//! [`SystemConfig`]), then format a table from the reports. This module
//! factors that into three pieces:
//!
//! * [`ExperimentSpec`] — one simulation cell: preset × workload ×
//!   [`RunOptions`], optionally with a full [`SystemConfig`] override
//!   for design-space/ablation points.
//! * [`ExperimentGrid`] — an ordered, label-deduplicated collection of
//!   cells, built by [`ExperimentGrid::cartesian`] expansion and merged
//!   across figures so shared cells (e.g. `Base-open × WebSearch`) are
//!   simulated once.
//! * [`run_grid`] — executes all cells on a fixed-size thread pool and
//!   returns results in *grid order* regardless of completion order.
//!   Every cell's seed is fixed by its spec before any thread starts,
//!   so `threads = 1` and `threads = N` produce identical reports.
//!
//! Results can be queried by `(preset, workload)` or label for table
//! rendering, and dumped as structured CSV/JSON rows under `results/`.

use crate::Scale;
use bump_sim::{
    config_for_scenario, run_experiment_with_config_instrumented, Preset, RunOptions, Scenario,
    SimReport, SystemConfig,
};
use bump_workloads::Workload;
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// One cell of an experiment grid.
#[derive(Clone, Debug)]
pub struct ExperimentSpec {
    /// Unique identity of the cell within a grid. Standard cells use
    /// `"<preset>/<workload>"`; custom-config cells must pick their own
    /// label (conventionally `"<figure>/<variant>"`). Merging grids
    /// deduplicates by this label.
    pub label: String,
    /// System design point.
    pub preset: Preset,
    /// Workload to run.
    pub workload: Workload,
    /// Warmup/measure windows and seed for this cell.
    pub options: RunOptions,
    /// The evaluation scenario (memory spec, LLC capacity, workload
    /// mix) the cell runs under. The default scenario is the paper's
    /// platform; non-default scenarios are named in the label
    /// (`<preset>/<workload>@<scenario>`).
    pub scenario: Scenario,
    /// Full system-config override for non-standard cells (design-space
    /// sweeps, ablations, virtualization mixes). When set, `options`
    /// still controls the warmup/measure windows and `scenario` is
    /// ignored (the override is already a complete configuration).
    pub config: Option<SystemConfig>,
}

impl ExperimentSpec {
    /// The standard cell for `preset` × `workload` at `options`.
    pub fn new(preset: Preset, workload: Workload, options: RunOptions) -> Self {
        ExperimentSpec {
            label: standard_label(preset, workload),
            preset,
            workload,
            options,
            scenario: Scenario::default(),
            config: None,
        }
    }

    /// The cell for `preset` × `workload` under `scenario`. With the
    /// default scenario this is exactly [`ExperimentSpec::new`]; any
    /// other scenario is named in the label.
    pub fn with_scenario(
        preset: Preset,
        workload: Workload,
        scenario: Scenario,
        options: RunOptions,
    ) -> Self {
        ExperimentSpec {
            label: scenario_label(preset, workload, &scenario),
            preset,
            workload,
            options,
            scenario,
            config: None,
        }
    }

    /// A cell running an explicit [`SystemConfig`] under `label`.
    pub fn with_config(
        label: impl Into<String>,
        config: SystemConfig,
        options: RunOptions,
    ) -> Self {
        ExperimentSpec {
            label: label.into(),
            preset: config.preset,
            workload: config.workload,
            options,
            scenario: Scenario::default(),
            config: Some(config),
        }
    }

    /// Executes this cell (synchronously).
    pub fn run(&self) -> SimReport {
        self.run_profiled(false)
    }

    /// [`ExperimentSpec::run`] with the engine phase profiler on or
    /// off. Profiling does not change the simulated results or the
    /// cell's journal identity; with `profile` set, the report carries
    /// `phase: Some(...)`.
    pub fn run_profiled(&self, profile: bool) -> SimReport {
        self.run_instrumented(profile, None)
    }

    /// [`ExperimentSpec::run_profiled`] with the sim-time telemetry
    /// sampler on at the given stride (`Some(0)` selects the default).
    /// Like profiling, telemetry changes neither the simulated results
    /// nor the cell's journal identity; with it on, the report carries
    /// `telemetry: Some(...)`.
    pub fn run_instrumented(&self, profile: bool, telemetry: Option<u64>) -> SimReport {
        let cfg = match &self.config {
            Some(cfg) => cfg.clone(),
            None => config_for_scenario(self.preset, self.workload, self.options, &self.scenario),
        };
        run_experiment_with_config_instrumented(cfg, self.options, profile, telemetry)
    }
}

fn standard_label(preset: Preset, workload: Workload) -> String {
    format!("{}/{}", preset.name(), workload.name())
}

/// The label for a cell under `scenario`:
/// `<preset>/<workload>[@<scenario>]` (no suffix for the default
/// scenario, so pre-scenario labels — and the journals and goldens
/// keyed on them — are unchanged).
pub fn scenario_label(preset: Preset, workload: Workload, scenario: &Scenario) -> String {
    if scenario.is_default() {
        standard_label(preset, workload)
    } else {
        format!("{}/{}@{}", preset.name(), workload.name(), scenario.name())
    }
}

/// Derives a per-cell seed from a base seed and the cell's identity.
///
/// The derivation is a SplitMix64 chain over the base seed and the
/// label bytes: deterministic across runs and platforms, distinct for
/// distinct labels (up to 64-bit collisions). Figures that must match
/// the calibrated single-seed outputs simply keep the base seed.
pub fn derive_cell_seed(base: u64, label: &str) -> u64 {
    let mut h = base ^ 0x9E37_79B9_7F4A_7C15;
    for b in label.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = h;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        h = z ^ (z >> 31);
    }
    h
}

/// An ordered, deduplicated collection of experiment cells.
#[derive(Clone, Debug, Default)]
pub struct ExperimentGrid {
    cells: Vec<ExperimentSpec>,
}

impl ExperimentGrid {
    /// An empty grid.
    pub fn new() -> Self {
        ExperimentGrid::default()
    }

    /// Cartesian expansion: one cell per `preset × workload`, in the
    /// given order (presets outer, workloads inner), all at `options`.
    pub fn cartesian(presets: &[Preset], workloads: &[Workload], options: RunOptions) -> Self {
        Self::cartesian_scenario(presets, workloads, options, &Scenario::default())
    }

    /// [`ExperimentGrid::cartesian`] with every cell under `scenario`
    /// (labels gain the `@<scenario>` suffix when it is non-default).
    pub fn cartesian_scenario(
        presets: &[Preset],
        workloads: &[Workload],
        options: RunOptions,
        scenario: &Scenario,
    ) -> Self {
        let mut grid = ExperimentGrid::new();
        for &p in presets {
            for &w in workloads {
                grid.push(ExperimentSpec::with_scenario(
                    p,
                    w,
                    scenario.clone(),
                    options,
                ));
            }
        }
        grid
    }

    /// Adds a cell unless its label is already present.
    ///
    /// A duplicate label with a *different* simulation (run options or
    /// config override) is a logic error in the caller — two figures
    /// would silently share one simulation of ambiguous meaning — so it
    /// panics. `SystemConfig` has no `PartialEq`; its `Debug` rendering
    /// is a complete value dump, so it serves as the equality witness.
    pub fn push(&mut self, spec: ExperimentSpec) {
        if let Err(e) = self.try_push(spec) {
            panic!("{e}");
        }
    }

    /// Non-panicking [`ExperimentGrid::push`]: `Ok(true)` when the cell
    /// was added, `Ok(false)` when an identical cell was already
    /// present (deduplicated), and `Err` when the label is reused for a
    /// *different* simulation. The wire protocol builds grids from
    /// untrusted submissions, where a conflict must become an `error`
    /// frame rather than a panic.
    pub fn try_push(&mut self, spec: ExperimentSpec) -> Result<bool, String> {
        if let Some(existing) = self.cells.iter().find(|c| c.label == spec.label) {
            if existing.options != spec.options {
                return Err(format!(
                    "grid label {:?} reused with different run options",
                    spec.label
                ));
            }
            if existing.scenario != spec.scenario {
                return Err(format!(
                    "grid label {:?} reused with a different scenario",
                    spec.label
                ));
            }
            if format!("{:?}", existing.config) != format!("{:?}", spec.config) {
                return Err(format!(
                    "grid label {:?} reused with a different config override",
                    spec.label
                ));
            }
            return Ok(false);
        }
        self.cells.push(spec);
        Ok(true)
    }

    /// Merges `other` into `self`, deduplicating by label.
    pub fn merge(&mut self, other: ExperimentGrid) {
        for spec in other.cells {
            self.push(spec);
        }
    }

    /// Rewrites every cell's seed to one derived from the cell label
    /// (see [`derive_cell_seed`]), for sweeps that want decorrelated
    /// cells rather than the calibrated base seed.
    pub fn derive_seeds(mut self) -> Self {
        for cell in &mut self.cells {
            cell.options.seed = derive_cell_seed(cell.options.seed, &cell.label);
        }
        self
    }

    /// Expands every cell into `replicas` cells across derived seeds
    /// (the `--seeds N` mode): replica 0 is the cell unchanged, so
    /// single-seed renderings and golden outputs are unaffected;
    /// replica `k` is labeled `<label>#s<k>` and seeded by chaining
    /// [`derive_cell_seed`] `k` times from the base seed — the same
    /// derivation [`ExperimentGrid::derive_seeds`] applies once.
    /// Replicas of a cell are consecutive in the expanded grid.
    pub fn replicate_seeds(&self, replicas: usize) -> ExperimentGrid {
        let replicas = replicas.max(1);
        let mut grid = ExperimentGrid::new();
        for cell in &self.cells {
            let mut seed = cell.options.seed;
            for k in 0..replicas {
                let mut spec = cell.clone();
                if k > 0 {
                    seed = derive_cell_seed(seed, &cell.label);
                    let _ = write!(spec.label, "#s{k}");
                    spec.options.seed = seed;
                }
                grid.push(spec);
            }
        }
        grid
    }

    /// The cells, in insertion (result) order.
    pub fn cells(&self) -> &[ExperimentSpec] {
        &self.cells
    }

    /// Splits a grid produced by
    /// [`ExperimentGrid::replicate_seeds`]`(replicas)` back into its
    /// per-base-cell work units: consecutive runs of `replicas` cells
    /// (replica 0 plus its `#s<k>` derivatives). This is the unit the
    /// `bumpr` router shards across backends — a unit maps onto a
    /// single-cell `submit` with the same seed count, so the backend
    /// reproduces exactly the unit's labels and seeds.
    ///
    /// # Panics
    ///
    /// Panics if the grid size is not a multiple of `replicas` — the
    /// grid cannot then be a `replicate_seeds(replicas)` expansion.
    pub fn unit_ranges(&self, replicas: usize) -> Vec<std::ops::Range<usize>> {
        let replicas = replicas.max(1);
        assert!(
            self.cells.len().is_multiple_of(replicas),
            "{} cells cannot be a grid of {replicas}-replica units",
            self.cells.len()
        );
        (0..self.cells.len() / replicas)
            .map(|u| u * replicas..(u + 1) * replicas)
            .collect()
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the grid holds no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }
}

/// Number of worker threads to use by default: `BUMP_THREADS` if set,
/// otherwise the machine's available parallelism.
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("BUMP_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs every cell of `grid` on `threads` workers.
///
/// A thin synchronous wrapper over the shared work-stealing
/// [`crate::sched::Scheduler`] (also the execution path behind the
/// `bumpd` daemon): cells are stolen in estimated-cost order, and each
/// worker's report lands in the slot for its cell index, so the
/// returned [`GridResults`] is in grid order and bit-identical for any
/// thread count (cells are independent simulations with spec-fixed
/// seeds).
pub fn run_grid(grid: &ExperimentGrid, threads: usize) -> GridResults {
    run_grid_with(grid, threads, |_, _, _| {})
}

/// [`run_grid`] with a streaming hook: `on_cell` fires (from a worker
/// thread, in completion order) as each cell's report lands. This is
/// what drives incremental CSV emission — an interrupted sweep leaves
/// every finished row on disk (see [`IncrementalCsv`]).
pub fn run_grid_with<F>(grid: &ExperimentGrid, threads: usize, on_cell: F) -> GridResults
where
    F: Fn(usize, &ExperimentSpec, &SimReport) + Send + Sync + 'static,
{
    run_grid_profiled_with(grid, threads, false, on_cell)
}

/// [`run_grid_with`] with the engine phase profiler on or off. With
/// `profile` set, every report carries `phase: Some(...)` (read it in
/// `on_cell` or from the returned rows); simulated results — and thus
/// every figure, golden CSV, and journal identity — are unchanged.
pub fn run_grid_profiled_with<F>(
    grid: &ExperimentGrid,
    threads: usize,
    profile: bool,
    on_cell: F,
) -> GridResults
where
    F: Fn(usize, &ExperimentSpec, &SimReport) + Send + Sync + 'static,
{
    run_grid_instrumented_with(grid, threads, profile, None, on_cell)
}

/// [`run_grid_profiled_with`] with the sim-time telemetry switch: with
/// `telemetry = Some(stride)` every cell's report carries its gauge
/// series (write them with [`GridResults::write_telemetry_files`]).
/// Series are keyed on simulated cycles and cells carry spec-fixed
/// seeds, so like every other grid output they are byte-identical for
/// any thread count.
pub fn run_grid_instrumented_with<F>(
    grid: &ExperimentGrid,
    threads: usize,
    profile: bool,
    telemetry: Option<u64>,
    on_cell: F,
) -> GridResults
where
    F: Fn(usize, &ExperimentSpec, &SimReport) + Send + Sync + 'static,
{
    let cells = grid.cells();
    if cells.is_empty() {
        return GridResults { rows: Vec::new() };
    }
    let threads = threads.max(1).min(cells.len());
    let sched = crate::sched::Scheduler::new(threads);
    let slots: Arc<Vec<Mutex<Option<SimReport>>>> =
        Arc::new(cells.iter().map(|_| Mutex::new(None)).collect());
    let handle = sched.submit_instrumented(
        cells.to_vec(),
        profile,
        telemetry,
        Box::new({
            let slots = Arc::clone(&slots);
            move |i, spec, report, _timing| {
                on_cell(i, spec, report);
                *slots[i].lock().expect("result slot poisoned") = Some(report.clone());
            }
        }),
    );
    let outcome = handle.wait();
    drop(sched); // joins the workers; the job callback is dropped with them
    drop(handle);
    if let Err(msg) = outcome {
        panic!("{msg}");
    }
    let slots = Arc::try_unwrap(slots).expect("scheduler retained result slots after join");
    let rows = cells
        .iter()
        .cloned()
        .zip(slots.into_iter().map(|s| {
            s.into_inner()
                .expect("result slot poisoned")
                .expect("worker exited without writing its cell")
        }))
        .collect();
    GridResults { rows }
}

/// The reports of one grid run, in grid order.
#[derive(Clone, Debug)]
pub struct GridResults {
    rows: Vec<(ExperimentSpec, SimReport)>,
}

impl GridResults {
    /// The report for the *standard* cell `preset × workload`.
    ///
    /// Panics with the missing label if the grid never contained it —
    /// that is a figure wiring bug, not a runtime condition.
    pub fn get(&self, preset: Preset, workload: Workload) -> &SimReport {
        let label = standard_label(preset, workload);
        self.get_labeled(&label)
    }

    /// The report for the cell with `label`.
    pub fn get_labeled(&self, label: &str) -> &SimReport {
        self.try_get_labeled(label)
            .unwrap_or_else(|| panic!("grid has no cell labeled {label:?}"))
    }

    /// The report for `label`, if present.
    pub fn try_get_labeled(&self, label: &str) -> Option<&SimReport> {
        self.rows
            .iter()
            .find(|(spec, _)| spec.label == label)
            .map(|(_, r)| r)
    }

    /// Iterates `(spec, report)` pairs in grid order.
    pub fn iter(&self) -> impl Iterator<Item = (&ExperimentSpec, &SimReport)> {
        self.rows.iter().map(|(s, r)| (s, r))
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the result set is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The subset of results for the cells of `grid`, in `grid`'s
    /// order. Used by `repro_all` to carve per-figure result files out
    /// of the merged run. Panics if `grid` has a cell these results
    /// don't cover.
    pub fn select(&self, grid: &ExperimentGrid) -> GridResults {
        let rows = grid
            .cells()
            .iter()
            .map(|spec| {
                let report = self.get_labeled(&spec.label).clone();
                (spec.clone(), report)
            })
            .collect();
        GridResults { rows }
    }

    /// One structured metric row per cell, in grid order.
    pub fn metric_rows(&self) -> Vec<MetricRow> {
        self.rows
            .iter()
            .map(|(spec, r)| MetricRow::of(spec, r))
            .collect()
    }

    /// Renders all cells as CSV (header + one row per cell).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(MetricRow::CSV_HEADER);
        out.push('\n');
        for row in self.metric_rows() {
            out.push_str(&row.to_csv());
            out.push('\n');
        }
        out
    }

    /// Renders all cells as a JSON array of objects.
    pub fn to_json(&self) -> String {
        let mut out = String::from("[\n");
        let rows = self.metric_rows();
        for (i, row) in rows.iter().enumerate() {
            out.push_str("  ");
            out.push_str(&row.to_json());
            if i + 1 < rows.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push(']');
        out.push('\n');
        out
    }

    /// Writes `results/<name>.csv` and `results/<name>.json`.
    ///
    /// Each file is written to a tempfile and renamed into place, so a
    /// completed run atomically replaces any partial CSV an
    /// [`IncrementalCsv`] streamed while cells were landing (and the
    /// final row order is always grid order, independent of
    /// completion order).
    ///
    /// Errors are reported to stderr but not fatal, matching the text
    /// emitters: a read-only checkout still prints results to stdout.
    pub fn write_files(&self, name: &str) {
        let dir = Path::new("results");
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("warning: cannot create results/: {e}");
            return;
        }
        for (ext, content) in [("csv", self.to_csv()), ("json", self.to_json())] {
            let path = dir.join(format!("{name}.{ext}"));
            write_atomically(&path, &content);
        }
    }

    /// Writes `results/telemetry_<name>.csv` / `.json` from the cells
    /// whose reports carry a telemetry series (a no-op when none do —
    /// the run was not instrumented). The renderers live in the sim
    /// crate and consume the series values directly, so a routed job's
    /// artifacts are byte-identical to a local run's.
    pub fn write_telemetry_files(&self, name: &str) {
        let cells: Vec<(usize, &str, &bump_sim::TelemetrySeries)> = self
            .rows
            .iter()
            .enumerate()
            .filter_map(|(i, (spec, r))| r.telemetry.as_ref().map(|t| (i, spec.label.as_str(), t)))
            .collect();
        if cells.is_empty() {
            return;
        }
        let dir = Path::new("results");
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("warning: cannot create results/: {e}");
            return;
        }
        for (ext, content) in [
            ("csv", bump_sim::cells_to_csv(&cells)),
            ("json", bump_sim::cells_to_json(&cells)),
        ] {
            write_atomically(&dir.join(format!("telemetry_{name}.{ext}")), &content);
        }
    }
}

/// Writes `content` to `path` via a same-directory tempfile + rename.
fn write_atomically(path: &Path, content: &str) {
    let tmp = path.with_extension("tmp");
    if let Err(e) = std::fs::write(&tmp, content) {
        eprintln!("warning: cannot write {}: {e}", tmp.display());
        return;
    }
    if let Err(e) = std::fs::rename(&tmp, path) {
        eprintln!("warning: cannot rename into {}: {e}", path.display());
    }
}

/// Streams metric rows to `results/<name>.csv` as cells land.
///
/// The file is opened lazily on the first row (so figures without
/// simulations never create one), gets the CSV header up front, and is
/// flushed after every row: an interrupted `--full` sweep leaves every
/// finished cell's row on disk, in completion order. A run that
/// completes rewrites the file in grid order via
/// [`GridResults::write_files`]'s tempfile + rename.
pub struct IncrementalCsv {
    path: PathBuf,
    state: Mutex<IncrementalState>,
}

enum IncrementalState {
    Unopened,
    Open(std::fs::File),
    Failed,
}

impl IncrementalCsv {
    /// An incremental writer for `results/<name>.csv`.
    pub fn new(name: &str) -> Self {
        IncrementalCsv {
            path: Path::new("results").join(format!("{name}.csv")),
            state: Mutex::new(IncrementalState::Unopened),
        }
    }

    /// Appends one row (header first if this is the first row).
    /// Errors disable the writer with a warning; the run itself is
    /// never failed over result-file I/O.
    pub fn append(&self, row: &MetricRow) {
        let mut state = self.state.lock().expect("incremental csv poisoned");
        if let IncrementalState::Unopened = *state {
            *state = match self.open() {
                Ok(file) => IncrementalState::Open(file),
                Err(e) => {
                    eprintln!("warning: cannot stream {}: {e}", self.path.display());
                    IncrementalState::Failed
                }
            };
        }
        if let IncrementalState::Open(file) = &mut *state {
            let ok = writeln!(file, "{}", row.to_csv()).and_then(|()| file.flush());
            if let Err(e) = ok {
                eprintln!("warning: cannot stream {}: {e}", self.path.display());
                *state = IncrementalState::Failed;
            }
        }
    }

    fn open(&self) -> std::io::Result<std::fs::File> {
        if let Some(dir) = self.path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let mut file = std::fs::File::create(&self.path)?;
        writeln!(file, "{}", MetricRow::CSV_HEADER)?;
        file.flush()?;
        Ok(file)
    }
}

/// The structured per-cell metrics emitted to CSV/JSON.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricRow {
    /// Cell label.
    pub label: String,
    /// Preset name.
    pub preset: &'static str,
    /// Workload name.
    pub workload: &'static str,
    /// Core count.
    pub cores: usize,
    /// Workload seed.
    pub seed: u64,
    /// Measured cycles.
    pub cycles: u64,
    /// Retired instructions.
    pub instructions: u64,
    /// Aggregate IPC.
    pub ipc: f64,
    /// DRAM row-buffer hit ratio.
    pub row_hit: f64,
    /// Ideal-locality row-buffer hit bound.
    pub ideal_row_hit: f64,
    /// Dynamic memory energy per useful access (nJ).
    pub energy_per_access_nj: f64,
    /// Total server energy (J).
    pub server_energy_j: f64,
    /// Total DRAM accesses.
    pub dram_accesses: u64,
    /// Write share of DRAM traffic.
    pub write_fraction: f64,
    /// Predicted (bulk-covered) fraction of useful reads.
    pub predicted_read_fraction: f64,
    /// Overfetched fraction of useful reads.
    pub read_overfetch_fraction: f64,
    /// Predicted (eagerly written) fraction of writes.
    pub predicted_write_fraction: f64,
    /// Extra-writeback fraction of writes.
    pub extra_writeback_fraction: f64,
}

impl MetricRow {
    /// The metric row for one cell's report.
    pub fn of(spec: &ExperimentSpec, r: &SimReport) -> MetricRow {
        MetricRow {
            label: spec.label.clone(),
            preset: spec.preset.name(),
            workload: spec.workload.name(),
            cores: spec.options.cores,
            seed: spec.options.seed,
            cycles: r.cycles,
            instructions: r.instructions,
            ipc: r.ipc(),
            row_hit: r.row_hit_ratio().value(),
            ideal_row_hit: r.ideal_row_hit_ratio().value(),
            energy_per_access_nj: r.energy_per_access_nj(),
            server_energy_j: r.server_energy.total_j(),
            dram_accesses: r.traffic.total(),
            write_fraction: r.traffic.write_fraction(),
            predicted_read_fraction: r.predicted_read_fraction(),
            read_overfetch_fraction: r.read_overfetch_fraction(),
            predicted_write_fraction: r.predicted_write_fraction(),
            extra_writeback_fraction: r.extra_writeback_fraction(),
        }
    }

    /// CSV column names, matching [`MetricRow::to_csv`]'s field order.
    pub const CSV_HEADER: &'static str = "label,preset,workload,cores,seed,cycles,instructions,\
         ipc,row_hit,ideal_row_hit,energy_per_access_nj,server_energy_j,dram_accesses,\
         write_fraction,predicted_read_fraction,read_overfetch_fraction,\
         predicted_write_fraction,extra_writeback_fraction";

    /// One CSV row (no trailing newline).
    pub fn to_csv(&self) -> String {
        format!(
            "{},{},{},{},{},{},{},{:.6},{:.6},{:.6},{:.6},{:.6},{},{:.6},{:.6},{:.6},{:.6},{:.6}",
            self.label,
            self.preset,
            self.workload,
            self.cores,
            self.seed,
            self.cycles,
            self.instructions,
            self.ipc,
            self.row_hit,
            self.ideal_row_hit,
            self.energy_per_access_nj,
            self.server_energy_j,
            self.dram_accesses,
            self.write_fraction,
            self.predicted_read_fraction,
            self.read_overfetch_fraction,
            self.predicted_write_fraction,
            self.extra_writeback_fraction,
        )
    }

    /// One JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{");
        let _ = write!(
            s,
            "\"label\":{:?},\"preset\":{:?},\"workload\":{:?},\"cores\":{},\"seed\":{},\
             \"cycles\":{},\"instructions\":{},\"ipc\":{:.6},\"row_hit\":{:.6},\
             \"ideal_row_hit\":{:.6},\"energy_per_access_nj\":{:.6},\"server_energy_j\":{:.6},\
             \"dram_accesses\":{},\"write_fraction\":{:.6},\"predicted_read_fraction\":{:.6},\
             \"read_overfetch_fraction\":{:.6},\"predicted_write_fraction\":{:.6},\
             \"extra_writeback_fraction\":{:.6}",
            self.label,
            self.preset,
            self.workload,
            self.cores,
            self.seed,
            self.cycles,
            self.instructions,
            self.ipc,
            self.row_hit,
            self.ideal_row_hit,
            self.energy_per_access_nj,
            self.server_energy_j,
            self.dram_accesses,
            self.write_fraction,
            self.predicted_read_fraction,
            self.read_overfetch_fraction,
            self.predicted_write_fraction,
            self.extra_writeback_fraction,
        );
        s.push('}');
        s
    }
}

/// Extracts one numeric metric from a [`MetricRow`] (see
/// [`SEED_METRICS`]).
pub type MetricExtractor = fn(&MetricRow) -> f64;

/// The numeric [`MetricRow`] fields aggregated by [`SeedSummary`], as
/// `(column name, extractor)` pairs in summary column order.
pub const SEED_METRICS: &[(&str, MetricExtractor)] = &[
    ("cycles", |r| r.cycles as f64),
    ("instructions", |r| r.instructions as f64),
    ("ipc", |r| r.ipc),
    ("row_hit", |r| r.row_hit),
    ("ideal_row_hit", |r| r.ideal_row_hit),
    ("energy_per_access_nj", |r| r.energy_per_access_nj),
    ("server_energy_j", |r| r.server_energy_j),
    ("dram_accesses", |r| r.dram_accesses as f64),
    ("write_fraction", |r| r.write_fraction),
    ("predicted_read_fraction", |r| r.predicted_read_fraction),
    ("read_overfetch_fraction", |r| r.read_overfetch_fraction),
    ("predicted_write_fraction", |r| r.predicted_write_fraction),
    ("extra_writeback_fraction", |r| r.extra_writeback_fraction),
];

/// Mean ± sample standard deviation of one metric across seed replicas.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SeedStat {
    /// Arithmetic mean across replicas.
    pub mean: f64,
    /// Sample standard deviation (`n-1` denominator; 0 for one replica).
    pub std: f64,
}

impl SeedStat {
    fn of(values: &[f64]) -> SeedStat {
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let std = if values.len() < 2 {
            0.0
        } else {
            let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n - 1.0);
            var.sqrt()
        };
        SeedStat { mean, std }
    }
}

/// Per-cell mean ± stddev across seed replicas (the `--seeds N` mode).
#[derive(Clone, Debug)]
pub struct SeedRow {
    /// Base cell label (without the `#s<k>` replica suffix).
    pub label: String,
    /// Preset name.
    pub preset: &'static str,
    /// Workload name.
    pub workload: &'static str,
    /// Number of replicas aggregated.
    pub seeds: usize,
    /// One [`SeedStat`] per [`SEED_METRICS`] entry, in that order.
    pub stats: Vec<SeedStat>,
}

/// Seed-replicated aggregation of a grid run: one row per *base* cell,
/// each metric reported as mean ± sample stddev across the replicas
/// produced by [`ExperimentGrid::replicate_seeds`].
#[derive(Clone, Debug)]
pub struct SeedSummary {
    rows: Vec<SeedRow>,
}

impl SeedSummary {
    /// Aggregates `results` (a run of `base.replicate_seeds(replicas)`)
    /// back onto the cells of `base`. Panics if a replica row is
    /// missing — that is a harness wiring bug.
    pub fn from_results(base: &ExperimentGrid, results: &GridResults, replicas: usize) -> Self {
        let replicas = replicas.max(1);
        let by_label: std::collections::HashMap<String, MetricRow> = results
            .metric_rows()
            .into_iter()
            .map(|row| (row.label.clone(), row))
            .collect();
        let rows = base
            .cells()
            .iter()
            .map(|cell| {
                let replica_rows: Vec<&MetricRow> = (0..replicas)
                    .map(|k| {
                        let label = if k == 0 {
                            cell.label.clone()
                        } else {
                            format!("{}#s{k}", cell.label)
                        };
                        by_label
                            .get(label.as_str())
                            .unwrap_or_else(|| panic!("seed summary missing replica {label:?}"))
                    })
                    .collect();
                let stats = SEED_METRICS
                    .iter()
                    .map(|(_, get)| {
                        let values: Vec<f64> = replica_rows.iter().map(|r| get(r)).collect();
                        SeedStat::of(&values)
                    })
                    .collect();
                SeedRow {
                    label: cell.label.clone(),
                    preset: cell.preset.name(),
                    workload: cell.workload.name(),
                    seeds: replicas,
                    stats,
                }
            })
            .collect();
        SeedSummary { rows }
    }

    /// The aggregated rows, in base-grid order.
    pub fn rows(&self) -> &[SeedRow] {
        &self.rows
    }

    /// CSV: `label,preset,workload,seeds` then `<metric>_mean,<metric>_std`
    /// per [`SEED_METRICS`] entry.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("label,preset,workload,seeds");
        for (name, _) in SEED_METRICS {
            let _ = write!(out, ",{name}_mean,{name}_std");
        }
        out.push('\n');
        for row in &self.rows {
            let _ = write!(
                out,
                "{},{},{},{}",
                row.label, row.preset, row.workload, row.seeds
            );
            for stat in &row.stats {
                let _ = write!(out, ",{:.6},{:.6}", stat.mean, stat.std);
            }
            out.push('\n');
        }
        out
    }

    /// JSON array with per-metric `{"mean":..,"std":..}` objects.
    pub fn to_json(&self) -> String {
        let mut out = String::from("[\n");
        for (i, row) in self.rows.iter().enumerate() {
            let _ = write!(
                out,
                "  {{\"label\":{:?},\"preset\":{:?},\"workload\":{:?},\"seeds\":{}",
                row.label, row.preset, row.workload, row.seeds
            );
            for ((name, _), stat) in SEED_METRICS.iter().zip(&row.stats) {
                let _ = write!(
                    out,
                    ",\"{name}\":{{\"mean\":{:.6},\"std\":{:.6}}}",
                    stat.mean, stat.std
                );
            }
            out.push('}');
            if i + 1 < self.rows.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("]\n");
        out
    }

    /// Writes `results/<name>_seeds.csv` / `.json` (tempfile + rename).
    pub fn write_files(&self, name: &str) {
        let dir = Path::new("results");
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("warning: cannot create results/: {e}");
            return;
        }
        for (ext, content) in [("csv", self.to_csv()), ("json", self.to_json())] {
            write_atomically(&dir.join(format!("{name}_seeds.{ext}")), &content);
        }
    }
}

/// Command-line context shared by every figure binary: scale
/// (`--quick`/`--full`), worker count (`--threads N`), seed replication
/// (`--seeds N`), and simulation engine (`--engine {cycle,event}`).
#[derive(Clone, Copy, Debug)]
pub struct GridArgs {
    /// Run scale.
    pub scale: Scale,
    /// Worker threads for [`run_grid`].
    pub threads: usize,
    /// Seed replicas per cell (1 = single calibrated seed, no summary).
    pub seeds: usize,
    /// Simulation engine every cell runs under.
    pub engine: bump_sim::Engine,
    /// Run cells with the engine phase profiler on and write the
    /// per-phase wall-clock breakdown as `results/profile_<name>.json`.
    pub profile: bool,
    /// Run cells with the sim-time telemetry sampler on at this stride
    /// (`--telemetry` = default stride, `--telemetry=N` = every N
    /// cycles) and write the gauge series as
    /// `results/telemetry_<name>.{csv,json}`.
    pub telemetry: Option<u64>,
}

impl GridArgs {
    /// Parses the process arguments. Also installs the parsed engine as
    /// the process default (see [`crate::set_default_engine`]), so
    /// every grid built from [`crate::Scale::options`] afterwards picks
    /// it up.
    pub fn from_args() -> Self {
        let scale = Scale::from_args();
        let mut threads = default_threads();
        let mut seeds = 1;
        let mut engine = bump_sim::Engine::default();
        let args: Vec<String> = std::env::args().collect();
        for i in 0..args.len() {
            if args[i] == "--threads" {
                if let Some(v) = args.get(i + 1).and_then(|v| v.parse::<usize>().ok()) {
                    threads = v.max(1);
                }
            }
            if args[i] == "--seeds" {
                match args.get(i + 1).and_then(|v| v.parse::<usize>().ok()) {
                    Some(n) if n >= 1 => seeds = n,
                    _ => {
                        eprintln!("error: --seeds expects a replica count >= 1");
                        std::process::exit(2);
                    }
                }
            }
            if args[i] == "--engine" {
                match args.get(i + 1).and_then(|v| bump_sim::Engine::from_arg(v)) {
                    Some(e) => engine = e,
                    None => {
                        // The engine choice is the semantic point of the
                        // flag; running minutes of simulation under the
                        // wrong one is worse than stopping.
                        eprintln!("error: --engine expects 'cycle' or 'event'");
                        std::process::exit(2);
                    }
                }
            }
        }
        crate::set_default_engine(engine);
        let telemetry = parse_telemetry_flag(&args).unwrap_or_else(|| {
            eprintln!("error: --telemetry expects a positive cycle stride (--telemetry=N)");
            std::process::exit(2);
        });
        GridArgs {
            scale,
            threads,
            seeds,
            engine,
            profile: args.iter().any(|a| a == "--profile"),
            telemetry,
        }
    }
}

/// Parses `--telemetry` / `--telemetry=N` out of `args`. `Ok` values:
/// `None` (flag absent), `Some(0)` (bare flag — default stride),
/// `Some(n)` (explicit stride). A malformed or zero stride is `None`
/// at the outer level (parse error).
fn parse_telemetry_flag(args: &[String]) -> Option<Option<u64>> {
    let mut out = None;
    for a in args {
        if a == "--telemetry" {
            out = Some(0);
        } else if let Some(v) = a.strip_prefix("--telemetry=") {
            match v.parse::<u64>() {
                Ok(n) if n > 0 => out = Some(n),
                _ => return None,
            }
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts() -> RunOptions {
        RunOptions::quick(1)
    }

    #[test]
    fn cartesian_is_exhaustive_and_ordered() {
        let grid =
            ExperimentGrid::cartesian(&[Preset::BaseOpen, Preset::Bump], &Workload::all(), opts());
        assert_eq!(grid.len(), 12);
        assert_eq!(grid.cells()[0].preset, Preset::BaseOpen);
        assert_eq!(grid.cells()[6].preset, Preset::Bump);
        assert_eq!(grid.cells()[0].workload, Workload::all()[0]);
    }

    #[test]
    fn merge_deduplicates_by_label() {
        let mut a = ExperimentGrid::cartesian(&[Preset::BaseOpen], &Workload::all(), opts());
        let b =
            ExperimentGrid::cartesian(&[Preset::BaseOpen, Preset::Bump], &Workload::all(), opts());
        a.merge(b);
        assert_eq!(a.len(), 12, "shared Base-open cells must not duplicate");
    }

    #[test]
    #[should_panic(expected = "different run options")]
    fn conflicting_duplicate_labels_panic() {
        let mut grid = ExperimentGrid::new();
        grid.push(ExperimentSpec::new(
            Preset::BaseOpen,
            Workload::WebSearch,
            opts(),
        ));
        let mut other = opts();
        other.seed = 7;
        grid.push(ExperimentSpec::new(
            Preset::BaseOpen,
            Workload::WebSearch,
            other,
        ));
    }

    #[test]
    fn scenario_labels_tag_non_default_scenarios_only() {
        let default = ExperimentSpec::with_scenario(
            Preset::Bump,
            Workload::WebSearch,
            Scenario::default(),
            opts(),
        );
        assert_eq!(default.label, "BuMP/Web Search");
        let ddr4 = ExperimentSpec::with_scenario(
            Preset::Bump,
            Workload::WebSearch,
            Scenario::from_name("ddr4_2400+llc8m").unwrap(),
            opts(),
        );
        assert_eq!(ddr4.label, "BuMP/Web Search@ddr4_2400+llc8m");
        // The scenario name embedded in the label round-trips.
        let name = ddr4.label.split('@').nth(1).unwrap();
        assert_eq!(Scenario::from_name(name), Ok(ddr4.scenario));
    }

    #[test]
    fn cartesian_scenario_tags_every_cell() {
        let scenario = Scenario::from_name("lpddr4_3200").unwrap();
        let grid = ExperimentGrid::cartesian_scenario(
            &[Preset::BaseOpen, Preset::Bump],
            &[Workload::WebSearch],
            opts(),
            &scenario,
        );
        assert_eq!(grid.len(), 2);
        assert!(grid
            .cells()
            .iter()
            .all(|c| c.label.ends_with("@lpddr4_3200") && c.scenario == scenario));
    }

    #[test]
    #[should_panic(expected = "different scenario")]
    fn conflicting_duplicate_scenarios_panic() {
        let mut grid = ExperimentGrid::new();
        grid.push(ExperimentSpec::new(
            Preset::BaseOpen,
            Workload::WebSearch,
            opts(),
        ));
        // A scenario cell mislabeled as the standard one must not be
        // silently dropped in favor of the default simulation.
        let mut spec = ExperimentSpec::with_scenario(
            Preset::BaseOpen,
            Workload::WebSearch,
            Scenario::from_name("ddr4_2400").unwrap(),
            opts(),
        );
        spec.label = "Base-open/Web Search".into();
        grid.push(spec);
    }

    #[test]
    fn derived_seeds_are_deterministic_and_distinct() {
        let grid =
            ExperimentGrid::cartesian(&[Preset::BaseOpen], &Workload::all(), opts()).derive_seeds();
        let again =
            ExperimentGrid::cartesian(&[Preset::BaseOpen], &Workload::all(), opts()).derive_seeds();
        let seeds: Vec<u64> = grid.cells().iter().map(|c| c.options.seed).collect();
        let seeds2: Vec<u64> = again.cells().iter().map(|c| c.options.seed).collect();
        assert_eq!(seeds, seeds2, "derivation must be deterministic");
        let distinct: std::collections::HashSet<u64> = seeds.iter().copied().collect();
        assert_eq!(distinct.len(), seeds.len(), "cell seeds must be distinct");
    }

    #[test]
    #[should_panic(expected = "different config override")]
    fn conflicting_duplicate_configs_panic() {
        use bump_sim::config_for;
        let mut grid = ExperimentGrid::new();
        grid.push(ExperimentSpec::new(
            Preset::Bump,
            Workload::WebSearch,
            opts(),
        ));
        let mut cfg = config_for(Preset::Bump, Workload::WebSearch, opts());
        cfg.bump.bht_entries = 1;
        // Custom cell mislabeled as the standard one: must not be
        // silently dropped in favor of the standard simulation.
        grid.push(ExperimentSpec {
            label: "BuMP/Web Search".into(),
            ..ExperimentSpec::with_config("x", cfg, opts())
        });
    }

    #[test]
    fn replicate_seeds_keeps_replica_zero_and_decorrelates_the_rest() {
        let base = ExperimentGrid::cartesian(&[Preset::BaseOpen], &Workload::all(), opts());
        let grid = base.replicate_seeds(3);
        assert_eq!(grid.len(), 18);
        // Replicas of a cell are consecutive; replica 0 is unchanged.
        assert_eq!(grid.cells()[0].label, base.cells()[0].label);
        assert_eq!(grid.cells()[0].options.seed, opts().seed);
        assert_eq!(
            grid.cells()[1].label,
            format!("{}#s1", base.cells()[0].label)
        );
        // Replica 1's seed matches the one-step derive_seeds derivation.
        assert_eq!(
            grid.cells()[1].options.seed,
            derive_cell_seed(opts().seed, &base.cells()[0].label)
        );
        let seeds: std::collections::HashSet<u64> =
            grid.cells().iter().map(|c| c.options.seed).collect();
        assert_eq!(
            seeds.len(),
            1 + 12,
            "six base cells share seed 42; replicas differ"
        );
        // replicate_seeds(1) is the identity.
        assert_eq!(base.replicate_seeds(1).len(), base.len());
    }

    #[test]
    fn try_push_reports_conflicts_instead_of_panicking() {
        let mut grid = ExperimentGrid::new();
        let spec = ExperimentSpec::new(Preset::BaseOpen, Workload::WebSearch, opts());
        assert_eq!(grid.try_push(spec.clone()), Ok(true));
        assert_eq!(grid.try_push(spec.clone()), Ok(false), "identical dedups");
        let mut other = spec;
        other.options.seed = 7;
        let err = grid.try_push(other).expect_err("conflict must be an Err");
        assert!(err.contains("different run options"), "{err}");
        assert_eq!(grid.len(), 1);
    }

    #[test]
    fn unit_ranges_recover_replicate_seeds_layout() {
        let base = ExperimentGrid::cartesian(
            &[Preset::BaseOpen, Preset::Bump],
            &[Workload::WebSearch],
            opts(),
        );
        let grid = base.replicate_seeds(3);
        let units = grid.unit_ranges(3);
        assert_eq!(units.len(), base.len());
        for (u, range) in units.iter().enumerate() {
            let cells = &grid.cells()[range.clone()];
            assert_eq!(cells.len(), 3);
            // Replica 0 is the base cell; the rest carry its label.
            assert_eq!(cells[0].label, base.cells()[u].label);
            for (k, cell) in cells.iter().enumerate().skip(1) {
                assert_eq!(cell.label, format!("{}#s{k}", base.cells()[u].label));
            }
        }
        // replicas = 1: every cell is its own unit.
        assert_eq!(base.unit_ranges(1).len(), base.len());
    }

    #[test]
    #[should_panic(expected = "cannot be a grid")]
    fn unit_ranges_reject_non_replica_grids() {
        ExperimentGrid::cartesian(&[Preset::BaseOpen], &Workload::all(), opts()).unit_ranges(4);
    }

    #[test]
    fn seed_stat_mean_and_sample_std() {
        let s = SeedStat::of(&[1.0, 2.0, 3.0]);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert!((s.std - 1.0).abs() < 1e-12, "sample stddev of 1,2,3 is 1");
        let single = SeedStat::of(&[5.0]);
        assert_eq!(single.std, 0.0);
        assert_eq!(single.mean, 5.0);
    }

    #[test]
    fn seed_summary_shapes() {
        let base = ExperimentGrid::cartesian(&[Preset::BaseOpen], &[Workload::WebSearch], opts());
        let grid = base.replicate_seeds(2);
        let results = run_grid(&grid, 2);
        let summary = SeedSummary::from_results(&base, &results, 2);
        assert_eq!(summary.rows().len(), 1);
        assert_eq!(summary.rows()[0].seeds, 2);
        assert_eq!(summary.rows()[0].stats.len(), SEED_METRICS.len());
        let csv = summary.to_csv();
        assert_eq!(
            csv.lines().next().unwrap().split(',').count(),
            4 + 2 * SEED_METRICS.len()
        );
        assert_eq!(csv.lines().count(), 2);
        let json = summary.to_json();
        assert!(json.contains("\"ipc\":{\"mean\":"));
    }

    #[test]
    fn telemetry_flag_parses_bare_and_strided_forms() {
        let argv = |xs: &[&str]| xs.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert_eq!(parse_telemetry_flag(&argv(&["fig"])), Some(None));
        assert_eq!(
            parse_telemetry_flag(&argv(&["fig", "--telemetry"])),
            Some(Some(0))
        );
        assert_eq!(
            parse_telemetry_flag(&argv(&["fig", "--telemetry=4096"])),
            Some(Some(4096))
        );
        assert_eq!(parse_telemetry_flag(&argv(&["fig", "--telemetry=0"])), None);
        assert_eq!(parse_telemetry_flag(&argv(&["fig", "--telemetry=x"])), None);
    }

    #[test]
    fn grid_telemetry_runs_produce_series_and_artifacts() {
        let grid = ExperimentGrid::cartesian(&[Preset::BaseOpen], &[Workload::WebSearch], opts());
        let results = run_grid_instrumented_with(&grid, 1, false, Some(2048), |_, _, _| {});
        let (_, report) = &results.rows[0];
        let series = report.telemetry.as_ref().expect("telemetry requested");
        series.validate().expect("series well-formed");
        assert!(series.points.len() > 1);
        // Uninstrumented runs carry no series and write no files.
        let plain = run_grid(&grid, 1);
        assert!(plain.rows[0].1.telemetry.is_none());
    }

    #[test]
    fn csv_and_json_shapes() {
        let row = MetricRow {
            label: "x/y".into(),
            preset: "Base-open",
            workload: "Web Search",
            cores: 2,
            seed: 42,
            cycles: 10,
            instructions: 20,
            ipc: 2.0,
            row_hit: 0.5,
            ideal_row_hit: 0.75,
            energy_per_access_nj: 10.0,
            server_energy_j: 1.0,
            dram_accesses: 100,
            write_fraction: 0.25,
            predicted_read_fraction: 0.0,
            read_overfetch_fraction: 0.0,
            predicted_write_fraction: 0.0,
            extra_writeback_fraction: 0.0,
        };
        assert_eq!(
            row.to_csv().split(',').count(),
            MetricRow::CSV_HEADER.split(',').count()
        );
        let json = row.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"row_hit\":0.500000"));
    }
}
