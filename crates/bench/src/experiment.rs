//! The parallel experiment framework behind every figure/table binary.
//!
//! The reproduction's figures all do the same thing: run the simulator
//! over some preset × workload product (occasionally with a customized
//! [`SystemConfig`]), then format a table from the reports. This module
//! factors that into three pieces:
//!
//! * [`ExperimentSpec`] — one simulation cell: preset × workload ×
//!   [`RunOptions`], optionally with a full [`SystemConfig`] override
//!   for design-space/ablation points.
//! * [`ExperimentGrid`] — an ordered, label-deduplicated collection of
//!   cells, built by [`ExperimentGrid::cartesian`] expansion and merged
//!   across figures so shared cells (e.g. `Base-open × WebSearch`) are
//!   simulated once.
//! * [`run_grid`] — executes all cells on a fixed-size thread pool and
//!   returns results in *grid order* regardless of completion order.
//!   Every cell's seed is fixed by its spec before any thread starts,
//!   so `threads = 1` and `threads = N` produce identical reports.
//!
//! Results can be queried by `(preset, workload)` or label for table
//! rendering, and dumped as structured CSV/JSON rows under `results/`.

use crate::Scale;
use bump_sim::{
    run_experiment, run_experiment_with_config, Preset, RunOptions, SimReport, SystemConfig,
};
use bump_workloads::Workload;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// One cell of an experiment grid.
#[derive(Clone, Debug)]
pub struct ExperimentSpec {
    /// Unique identity of the cell within a grid. Standard cells use
    /// `"<preset>/<workload>"`; custom-config cells must pick their own
    /// label (conventionally `"<figure>/<variant>"`). Merging grids
    /// deduplicates by this label.
    pub label: String,
    /// System design point.
    pub preset: Preset,
    /// Workload to run.
    pub workload: Workload,
    /// Warmup/measure windows and seed for this cell.
    pub options: RunOptions,
    /// Full system-config override for non-standard cells (design-space
    /// sweeps, ablations, virtualization mixes). When set, `options`
    /// still controls the warmup/measure windows.
    pub config: Option<SystemConfig>,
}

impl ExperimentSpec {
    /// The standard cell for `preset` × `workload` at `options`.
    pub fn new(preset: Preset, workload: Workload, options: RunOptions) -> Self {
        ExperimentSpec {
            label: standard_label(preset, workload),
            preset,
            workload,
            options,
            config: None,
        }
    }

    /// A cell running an explicit [`SystemConfig`] under `label`.
    pub fn with_config(
        label: impl Into<String>,
        config: SystemConfig,
        options: RunOptions,
    ) -> Self {
        ExperimentSpec {
            label: label.into(),
            preset: config.preset,
            workload: config.workload,
            options,
            config: Some(config),
        }
    }

    /// Executes this cell (synchronously).
    pub fn run(&self) -> SimReport {
        match &self.config {
            Some(cfg) => run_experiment_with_config(cfg.clone(), self.options),
            None => run_experiment(self.preset, self.workload, self.options),
        }
    }
}

fn standard_label(preset: Preset, workload: Workload) -> String {
    format!("{}/{}", preset.name(), workload.name())
}

/// Derives a per-cell seed from a base seed and the cell's identity.
///
/// The derivation is a SplitMix64 chain over the base seed and the
/// label bytes: deterministic across runs and platforms, distinct for
/// distinct labels (up to 64-bit collisions). Figures that must match
/// the calibrated single-seed outputs simply keep the base seed.
pub fn derive_cell_seed(base: u64, label: &str) -> u64 {
    let mut h = base ^ 0x9E37_79B9_7F4A_7C15;
    for b in label.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = h;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        h = z ^ (z >> 31);
    }
    h
}

/// An ordered, deduplicated collection of experiment cells.
#[derive(Clone, Debug, Default)]
pub struct ExperimentGrid {
    cells: Vec<ExperimentSpec>,
}

impl ExperimentGrid {
    /// An empty grid.
    pub fn new() -> Self {
        ExperimentGrid::default()
    }

    /// Cartesian expansion: one cell per `preset × workload`, in the
    /// given order (presets outer, workloads inner), all at `options`.
    pub fn cartesian(presets: &[Preset], workloads: &[Workload], options: RunOptions) -> Self {
        let mut grid = ExperimentGrid::new();
        for &p in presets {
            for &w in workloads {
                grid.push(ExperimentSpec::new(p, w, options));
            }
        }
        grid
    }

    /// Adds a cell unless its label is already present.
    ///
    /// A duplicate label with a *different* simulation (run options or
    /// config override) is a logic error in the caller — two figures
    /// would silently share one simulation of ambiguous meaning — so it
    /// panics. `SystemConfig` has no `PartialEq`; its `Debug` rendering
    /// is a complete value dump, so it serves as the equality witness.
    pub fn push(&mut self, spec: ExperimentSpec) {
        if let Some(existing) = self.cells.iter().find(|c| c.label == spec.label) {
            assert_eq!(
                existing.options, spec.options,
                "grid label {:?} reused with different run options",
                spec.label
            );
            assert_eq!(
                format!("{:?}", existing.config),
                format!("{:?}", spec.config),
                "grid label {:?} reused with a different config override",
                spec.label
            );
            return;
        }
        self.cells.push(spec);
    }

    /// Merges `other` into `self`, deduplicating by label.
    pub fn merge(&mut self, other: ExperimentGrid) {
        for spec in other.cells {
            self.push(spec);
        }
    }

    /// Rewrites every cell's seed to one derived from the cell label
    /// (see [`derive_cell_seed`]), for sweeps that want decorrelated
    /// cells rather than the calibrated base seed.
    pub fn derive_seeds(mut self) -> Self {
        for cell in &mut self.cells {
            cell.options.seed = derive_cell_seed(cell.options.seed, &cell.label);
        }
        self
    }

    /// The cells, in insertion (result) order.
    pub fn cells(&self) -> &[ExperimentSpec] {
        &self.cells
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the grid holds no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }
}

/// Number of worker threads to use by default: `BUMP_THREADS` if set,
/// otherwise the machine's available parallelism.
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("BUMP_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs every cell of `grid` on `threads` workers.
///
/// Work is handed out cell-by-cell from an atomic cursor; each worker
/// writes its report into the slot for its cell index, so the returned
/// [`GridResults`] is in grid order and bit-identical for any thread
/// count (cells are independent simulations with spec-fixed seeds).
pub fn run_grid(grid: &ExperimentGrid, threads: usize) -> GridResults {
    let cells = grid.cells();
    let threads = threads.max(1).min(cells.len().max(1));
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<SimReport>>> = cells.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= cells.len() {
                    break;
                }
                let report = cells[i].run();
                *slots[i].lock().expect("result slot poisoned") = Some(report);
            });
        }
    });
    let rows = cells
        .iter()
        .cloned()
        .zip(slots.into_iter().map(|s| {
            s.into_inner()
                .expect("result slot poisoned")
                .expect("worker exited without writing its cell")
        }))
        .collect();
    GridResults { rows }
}

/// The reports of one grid run, in grid order.
#[derive(Clone, Debug)]
pub struct GridResults {
    rows: Vec<(ExperimentSpec, SimReport)>,
}

impl GridResults {
    /// The report for the *standard* cell `preset × workload`.
    ///
    /// Panics with the missing label if the grid never contained it —
    /// that is a figure wiring bug, not a runtime condition.
    pub fn get(&self, preset: Preset, workload: Workload) -> &SimReport {
        let label = standard_label(preset, workload);
        self.get_labeled(&label)
    }

    /// The report for the cell with `label`.
    pub fn get_labeled(&self, label: &str) -> &SimReport {
        self.try_get_labeled(label)
            .unwrap_or_else(|| panic!("grid has no cell labeled {label:?}"))
    }

    /// The report for `label`, if present.
    pub fn try_get_labeled(&self, label: &str) -> Option<&SimReport> {
        self.rows
            .iter()
            .find(|(spec, _)| spec.label == label)
            .map(|(_, r)| r)
    }

    /// Iterates `(spec, report)` pairs in grid order.
    pub fn iter(&self) -> impl Iterator<Item = (&ExperimentSpec, &SimReport)> {
        self.rows.iter().map(|(s, r)| (s, r))
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the result set is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The subset of results for the cells of `grid`, in `grid`'s
    /// order. Used by `repro_all` to carve per-figure result files out
    /// of the merged run. Panics if `grid` has a cell these results
    /// don't cover.
    pub fn select(&self, grid: &ExperimentGrid) -> GridResults {
        let rows = grid
            .cells()
            .iter()
            .map(|spec| {
                let report = self.get_labeled(&spec.label).clone();
                (spec.clone(), report)
            })
            .collect();
        GridResults { rows }
    }

    /// One structured metric row per cell, in grid order.
    pub fn metric_rows(&self) -> Vec<MetricRow> {
        self.rows
            .iter()
            .map(|(spec, r)| MetricRow {
                label: spec.label.clone(),
                preset: spec.preset.name(),
                workload: spec.workload.name(),
                cores: spec.options.cores,
                seed: spec.options.seed,
                cycles: r.cycles,
                instructions: r.instructions,
                ipc: r.ipc(),
                row_hit: r.row_hit_ratio().value(),
                ideal_row_hit: r.ideal_row_hit_ratio().value(),
                energy_per_access_nj: r.energy_per_access_nj(),
                server_energy_j: r.server_energy.total_j(),
                dram_accesses: r.traffic.total(),
                write_fraction: r.traffic.write_fraction(),
                predicted_read_fraction: r.predicted_read_fraction(),
                read_overfetch_fraction: r.read_overfetch_fraction(),
                predicted_write_fraction: r.predicted_write_fraction(),
                extra_writeback_fraction: r.extra_writeback_fraction(),
            })
            .collect()
    }

    /// Renders all cells as CSV (header + one row per cell).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(MetricRow::CSV_HEADER);
        out.push('\n');
        for row in self.metric_rows() {
            out.push_str(&row.to_csv());
            out.push('\n');
        }
        out
    }

    /// Renders all cells as a JSON array of objects.
    pub fn to_json(&self) -> String {
        let mut out = String::from("[\n");
        let rows = self.metric_rows();
        for (i, row) in rows.iter().enumerate() {
            out.push_str("  ");
            out.push_str(&row.to_json());
            if i + 1 < rows.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push(']');
        out.push('\n');
        out
    }

    /// Writes `results/<name>.csv` and `results/<name>.json`.
    ///
    /// Errors are reported to stderr but not fatal, matching the text
    /// emitters: a read-only checkout still prints results to stdout.
    pub fn write_files(&self, name: &str) {
        let dir = std::path::Path::new("results");
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("warning: cannot create results/: {e}");
            return;
        }
        for (ext, content) in [("csv", self.to_csv()), ("json", self.to_json())] {
            let path = dir.join(format!("{name}.{ext}"));
            if let Err(e) = std::fs::write(&path, content) {
                eprintln!("warning: cannot write {}: {e}", path.display());
            }
        }
    }
}

/// The structured per-cell metrics emitted to CSV/JSON.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricRow {
    /// Cell label.
    pub label: String,
    /// Preset name.
    pub preset: &'static str,
    /// Workload name.
    pub workload: &'static str,
    /// Core count.
    pub cores: usize,
    /// Workload seed.
    pub seed: u64,
    /// Measured cycles.
    pub cycles: u64,
    /// Retired instructions.
    pub instructions: u64,
    /// Aggregate IPC.
    pub ipc: f64,
    /// DRAM row-buffer hit ratio.
    pub row_hit: f64,
    /// Ideal-locality row-buffer hit bound.
    pub ideal_row_hit: f64,
    /// Dynamic memory energy per useful access (nJ).
    pub energy_per_access_nj: f64,
    /// Total server energy (J).
    pub server_energy_j: f64,
    /// Total DRAM accesses.
    pub dram_accesses: u64,
    /// Write share of DRAM traffic.
    pub write_fraction: f64,
    /// Predicted (bulk-covered) fraction of useful reads.
    pub predicted_read_fraction: f64,
    /// Overfetched fraction of useful reads.
    pub read_overfetch_fraction: f64,
    /// Predicted (eagerly written) fraction of writes.
    pub predicted_write_fraction: f64,
    /// Extra-writeback fraction of writes.
    pub extra_writeback_fraction: f64,
}

impl MetricRow {
    /// CSV column names, matching [`MetricRow::to_csv`]'s field order.
    pub const CSV_HEADER: &'static str = "label,preset,workload,cores,seed,cycles,instructions,\
         ipc,row_hit,ideal_row_hit,energy_per_access_nj,server_energy_j,dram_accesses,\
         write_fraction,predicted_read_fraction,read_overfetch_fraction,\
         predicted_write_fraction,extra_writeback_fraction";

    /// One CSV row (no trailing newline).
    pub fn to_csv(&self) -> String {
        format!(
            "{},{},{},{},{},{},{},{:.6},{:.6},{:.6},{:.6},{:.6},{},{:.6},{:.6},{:.6},{:.6},{:.6}",
            self.label,
            self.preset,
            self.workload,
            self.cores,
            self.seed,
            self.cycles,
            self.instructions,
            self.ipc,
            self.row_hit,
            self.ideal_row_hit,
            self.energy_per_access_nj,
            self.server_energy_j,
            self.dram_accesses,
            self.write_fraction,
            self.predicted_read_fraction,
            self.read_overfetch_fraction,
            self.predicted_write_fraction,
            self.extra_writeback_fraction,
        )
    }

    /// One JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{");
        let _ = write!(
            s,
            "\"label\":{:?},\"preset\":{:?},\"workload\":{:?},\"cores\":{},\"seed\":{},\
             \"cycles\":{},\"instructions\":{},\"ipc\":{:.6},\"row_hit\":{:.6},\
             \"ideal_row_hit\":{:.6},\"energy_per_access_nj\":{:.6},\"server_energy_j\":{:.6},\
             \"dram_accesses\":{},\"write_fraction\":{:.6},\"predicted_read_fraction\":{:.6},\
             \"read_overfetch_fraction\":{:.6},\"predicted_write_fraction\":{:.6},\
             \"extra_writeback_fraction\":{:.6}",
            self.label,
            self.preset,
            self.workload,
            self.cores,
            self.seed,
            self.cycles,
            self.instructions,
            self.ipc,
            self.row_hit,
            self.ideal_row_hit,
            self.energy_per_access_nj,
            self.server_energy_j,
            self.dram_accesses,
            self.write_fraction,
            self.predicted_read_fraction,
            self.read_overfetch_fraction,
            self.predicted_write_fraction,
            self.extra_writeback_fraction,
        );
        s.push('}');
        s
    }
}

/// Command-line context shared by every figure binary: scale
/// (`--quick`/`--full`), worker count (`--threads N`), and simulation
/// engine (`--engine {cycle,event}`).
#[derive(Clone, Copy, Debug)]
pub struct GridArgs {
    /// Run scale.
    pub scale: Scale,
    /// Worker threads for [`run_grid`].
    pub threads: usize,
    /// Simulation engine every cell runs under.
    pub engine: bump_sim::Engine,
}

impl GridArgs {
    /// Parses the process arguments. Also installs the parsed engine as
    /// the process default (see [`crate::set_default_engine`]), so
    /// every grid built from [`crate::Scale::options`] afterwards picks
    /// it up.
    pub fn from_args() -> Self {
        let scale = Scale::from_args();
        let mut threads = default_threads();
        let mut engine = bump_sim::Engine::default();
        let args: Vec<String> = std::env::args().collect();
        for i in 0..args.len() {
            if args[i] == "--threads" {
                if let Some(v) = args.get(i + 1).and_then(|v| v.parse::<usize>().ok()) {
                    threads = v.max(1);
                }
            }
            if args[i] == "--engine" {
                match args.get(i + 1).and_then(|v| bump_sim::Engine::from_arg(v)) {
                    Some(e) => engine = e,
                    None => {
                        // The engine choice is the semantic point of the
                        // flag; running minutes of simulation under the
                        // wrong one is worse than stopping.
                        eprintln!("error: --engine expects 'cycle' or 'event'");
                        std::process::exit(2);
                    }
                }
            }
        }
        crate::set_default_engine(engine);
        GridArgs {
            scale,
            threads,
            engine,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts() -> RunOptions {
        RunOptions::quick(1)
    }

    #[test]
    fn cartesian_is_exhaustive_and_ordered() {
        let grid =
            ExperimentGrid::cartesian(&[Preset::BaseOpen, Preset::Bump], &Workload::all(), opts());
        assert_eq!(grid.len(), 12);
        assert_eq!(grid.cells()[0].preset, Preset::BaseOpen);
        assert_eq!(grid.cells()[6].preset, Preset::Bump);
        assert_eq!(grid.cells()[0].workload, Workload::all()[0]);
    }

    #[test]
    fn merge_deduplicates_by_label() {
        let mut a = ExperimentGrid::cartesian(&[Preset::BaseOpen], &Workload::all(), opts());
        let b =
            ExperimentGrid::cartesian(&[Preset::BaseOpen, Preset::Bump], &Workload::all(), opts());
        a.merge(b);
        assert_eq!(a.len(), 12, "shared Base-open cells must not duplicate");
    }

    #[test]
    #[should_panic(expected = "different run options")]
    fn conflicting_duplicate_labels_panic() {
        let mut grid = ExperimentGrid::new();
        grid.push(ExperimentSpec::new(
            Preset::BaseOpen,
            Workload::WebSearch,
            opts(),
        ));
        let mut other = opts();
        other.seed = 7;
        grid.push(ExperimentSpec::new(
            Preset::BaseOpen,
            Workload::WebSearch,
            other,
        ));
    }

    #[test]
    fn derived_seeds_are_deterministic_and_distinct() {
        let grid =
            ExperimentGrid::cartesian(&[Preset::BaseOpen], &Workload::all(), opts()).derive_seeds();
        let again =
            ExperimentGrid::cartesian(&[Preset::BaseOpen], &Workload::all(), opts()).derive_seeds();
        let seeds: Vec<u64> = grid.cells().iter().map(|c| c.options.seed).collect();
        let seeds2: Vec<u64> = again.cells().iter().map(|c| c.options.seed).collect();
        assert_eq!(seeds, seeds2, "derivation must be deterministic");
        let distinct: std::collections::HashSet<u64> = seeds.iter().copied().collect();
        assert_eq!(distinct.len(), seeds.len(), "cell seeds must be distinct");
    }

    #[test]
    #[should_panic(expected = "different config override")]
    fn conflicting_duplicate_configs_panic() {
        use bump_sim::config_for;
        let mut grid = ExperimentGrid::new();
        grid.push(ExperimentSpec::new(
            Preset::Bump,
            Workload::WebSearch,
            opts(),
        ));
        let mut cfg = config_for(Preset::Bump, Workload::WebSearch, opts());
        cfg.bump.bht_entries = 1;
        // Custom cell mislabeled as the standard one: must not be
        // silently dropped in favor of the standard simulation.
        grid.push(ExperimentSpec {
            label: "BuMP/Web Search".into(),
            ..ExperimentSpec::with_config("x", cfg, opts())
        });
    }

    #[test]
    fn csv_and_json_shapes() {
        let row = MetricRow {
            label: "x/y".into(),
            preset: "Base-open",
            workload: "Web Search",
            cores: 2,
            seed: 42,
            cycles: 10,
            instructions: 20,
            ipc: 2.0,
            row_hit: 0.5,
            ideal_row_hit: 0.75,
            energy_per_access_nj: 10.0,
            server_energy_j: 1.0,
            dram_accesses: 100,
            write_fraction: 0.25,
            predicted_read_fraction: 0.0,
            read_overfetch_fraction: 0.0,
            predicted_write_fraction: 0.0,
            extra_writeback_fraction: 0.0,
        };
        assert_eq!(
            row.to_csv().split(',').count(),
            MetricRow::CSV_HEADER.split(',').count()
        );
        let json = row.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"row_hit\":0.500000"));
    }
}
