//! Property tests for the event-driven scheduler horizons.
//!
//! Three contracts back the event engine's equivalence to the
//! cycle-accurate oracle:
//!
//! 1. `next_event_at(now)` never lies in the past (`>= now`).
//! 2. Fast-forwarding an idle window — `skip_idle` over the cycles
//!    `next_event_at` proved null — leaves the controller (banks,
//!    queues, timers, energy counters) in *exactly* the state that many
//!    sequential ticks produce, and those ticks complete nothing.
//! 3. `tick_event` (the memoized-horizon fast path) produces the same
//!    completion stream and final state as plain per-cycle ticking.

use bump_dram::{DramConfig, MemoryController, RowPolicy, Transaction};
use bump_types::{BlockAddr, Interleaving, MemCycle, TrafficClass};
use proptest::prelude::*;

#[derive(Clone, Debug)]
struct Step {
    gap: u8,
    block: u64,
    write: bool,
    spec: bool,
}

fn steps() -> impl Strategy<Value = Vec<Step>> {
    prop::collection::vec(
        (0u8..12, 0u64..1 << 20, any::<bool>(), any::<bool>()).prop_map(
            |(gap, block, write, spec)| Step {
                gap,
                block,
                write,
                spec,
            },
        ),
        1..120,
    )
}

fn txn_for(s: &Step) -> Transaction {
    let block = BlockAddr::from_index(s.block);
    if s.write {
        let class = if s.spec {
            TrafficClass::EagerWriteback
        } else {
            TrafficClass::DemandWriteback
        };
        Transaction::write(block, class, 0)
    } else {
        let class = if s.spec {
            TrafficClass::BulkRead
        } else {
            TrafficClass::Demand
        };
        Transaction::read(block, class, 0)
    }
}

fn config(policy: RowPolicy, interleaving: Interleaving) -> DramConfig {
    let mut cfg = DramConfig::paper_open_row();
    cfg.policy = policy;
    cfg.interleaving = interleaving;
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Contract 1: the horizon is never in the past, under both row
    /// policies and arbitrary in-flight traffic.
    #[test]
    fn next_event_never_in_the_past(steps in steps(), close in any::<bool>()) {
        let policy = if close { RowPolicy::Close } else { RowPolicy::Open };
        let mut mc = MemoryController::new(config(policy, Interleaving::Region));
        let mut now: MemCycle = 0;
        let mut done = Vec::new();
        for s in &steps {
            let _ = mc.try_enqueue(txn_for(s), now);
            for _ in 0..s.gap {
                let horizon = mc.next_event_at(now);
                prop_assert!(
                    horizon >= now,
                    "horizon {horizon} is before now {now}"
                );
                mc.tick(now, &mut done);
                now += 1;
            }
        }
    }

    /// Contract 2: when the horizon proves a window null, skipping it
    /// arithmetically equals ticking through it — the full `Debug`
    /// rendering of the controller (bank/rank timers, queues, energy)
    /// is compared, and the ticked window must complete nothing.
    #[test]
    fn skipping_idle_window_equals_sequential_ticks(
        steps in steps(),
        close in any::<bool>(),
        block_interleave in any::<bool>(),
    ) {
        let policy = if close { RowPolicy::Close } else { RowPolicy::Open };
        let il = if block_interleave { Interleaving::Block } else { Interleaving::Region };
        let mut ticked = MemoryController::new(config(policy, il));
        let mut skipped = MemoryController::new(config(policy, il));
        let mut now: MemCycle = 0;
        let mut done_t = Vec::new();
        let mut done_s = Vec::new();
        for s in &steps {
            let t = txn_for(s);
            prop_assert_eq!(
                ticked.try_enqueue(t, now).is_ok(),
                skipped.try_enqueue(t, now).is_ok()
            );
            let target = now + u64::from(s.gap);
            while now < target {
                let horizon = ticked.next_event_at(now);
                if horizon > now + 1 {
                    // A provably null window: tick one controller
                    // through it, bulk-skip the other.
                    let end = horizon.min(target);
                    let before = done_t.len();
                    for t in now..end {
                        ticked.tick(t, &mut done_t);
                    }
                    prop_assert_eq!(
                        done_t.len(),
                        before,
                        "null window completed a transaction"
                    );
                    skipped.skip_idle(end - now);
                    now = end;
                } else {
                    ticked.tick(now, &mut done_t);
                    skipped.tick(now, &mut done_s);
                    now += 1;
                }
            }
            prop_assert_eq!(
                format!("{ticked:?}"),
                format!("{skipped:?}"),
                "controller state diverged after skip at cycle {}", now
            );
        }
        // Completions delivered on ticked-only cycles inside null
        // windows would have tripped the assert above; the streams on
        // shared cycles must agree too.
        let extra: Vec<_> = done_t.iter().filter(|c| !done_s.contains(c)).collect();
        prop_assert!(extra.is_empty(), "completions diverged: {extra:?}");
    }

    /// Contract 3: the memoized fast path of `tick_event` is
    /// observationally identical to plain per-cycle ticking — same
    /// completions in the same order, same statistics and energy.
    #[test]
    fn tick_event_matches_plain_ticking(
        steps in steps(),
        close in any::<bool>(),
    ) {
        let policy = if close { RowPolicy::Close } else { RowPolicy::Open };
        let mut plain = MemoryController::new(config(policy, Interleaving::Region));
        let mut event = MemoryController::new(config(policy, Interleaving::Region));
        let mut now: MemCycle = 0;
        let mut done_p = Vec::new();
        let mut done_e = Vec::new();
        for s in &steps {
            let t = txn_for(s);
            prop_assert_eq!(
                plain.try_enqueue(t, now).is_ok(),
                event.try_enqueue(t, now).is_ok()
            );
            for _ in 0..s.gap {
                plain.tick(now, &mut done_p);
                event.tick_event(now, &mut done_e);
                now += 1;
            }
        }
        // Drain both for long enough to retire everything in flight.
        for _ in 0..200_000 {
            plain.tick(now, &mut done_p);
            event.tick_event(now, &mut done_e);
            now += 1;
            if done_p.len() == done_e.len() && plain.queued() == 0 && event.queued() == 0 {
                break;
            }
        }
        prop_assert_eq!(&done_p, &done_e, "completion streams diverged");
        prop_assert_eq!(
            format!("{:?}", plain.stats()),
            format!("{:?}", event.stats())
        );
        prop_assert_eq!(
            format!("{:?}", plain.energy()),
            format!("{:?}", event.energy())
        );
    }
}
