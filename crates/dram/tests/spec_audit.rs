//! Every supported memory spec must satisfy the same inter-command
//! constraint audit as the paper's DDR3-1600: arbitrary transaction
//! mixes scheduled against the DDR4-2400 and LPDDR4-3200 timing sets
//! (and their geometries) produce zero violations from the independent
//! [`bump_dram::TimingAuditor`], lose no transactions, and this holds
//! under both row policies. A new timing set that breaks a scheduler
//! assumption (e.g. a tRFC longer than the refresh stagger) fails here
//! rather than skewing scenario figures quietly.

use bump_dram::{DramConfig, MemoryController, RowPolicy, Transaction};
use bump_types::{BlockAddr, MemSpec, TrafficClass};
use proptest::prelude::*;

#[derive(Clone, Debug)]
struct Step {
    gap: u8,
    block: u64,
    write: bool,
}

fn steps() -> impl Strategy<Value = Vec<Step>> {
    prop::collection::vec(
        (0u8..6, 0u64..1 << 22, any::<bool>()).prop_map(|(gap, block, write)| Step {
            gap,
            block,
            write,
        }),
        1..160,
    )
}

fn run_mix(steps: &[Step], spec: &MemSpec, policy: RowPolicy) -> (usize, u64, u64, u64) {
    let mut cfg = match policy {
        RowPolicy::Open => DramConfig::open_row(spec),
        RowPolicy::Close => DramConfig::close_row(spec),
    };
    cfg.audit = true;
    let mut mc = MemoryController::new(cfg);
    let mut now = 0u64;
    let mut done = Vec::new();
    let mut accepted = 0u64;
    for s in steps {
        for _ in 0..s.gap {
            mc.tick(now, &mut done);
            now += 1;
        }
        let block = BlockAddr::from_index(s.block);
        let txn = if s.write {
            Transaction::write(block, TrafficClass::DemandWriteback, 0)
        } else {
            Transaction::read(block, TrafficClass::Demand, 0)
        };
        if mc.try_enqueue(txn, now).is_ok() {
            accepted += 1;
        }
    }
    // Drain far enough to cross several refresh intervals of the
    // slowest spec, so refresh scheduling is audited too.
    for _ in 0..300_000 {
        if done.len() as u64 == accepted {
            break;
        }
        mc.tick(now, &mut done);
        now += 1;
    }
    (
        mc.audit_errors(),
        accepted,
        done.len() as u64,
        mc.energy().refreshes,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// DDR4-2400 under both policies: legal and lossless.
    #[test]
    fn ddr4_2400_passes_the_audit(s in steps()) {
        for policy in [RowPolicy::Open, RowPolicy::Close] {
            let (errors, accepted, completed, _) =
                run_mix(&s, &MemSpec::ddr4_2400(), policy);
            prop_assert_eq!(errors, 0, "timing violations under {:?}", policy);
            prop_assert_eq!(accepted, completed, "transactions lost under {:?}", policy);
        }
    }

    /// LPDDR4-3200 under both policies: legal and lossless.
    #[test]
    fn lpddr4_3200_passes_the_audit(s in steps()) {
        for policy in [RowPolicy::Open, RowPolicy::Close] {
            let (errors, accepted, completed, _) =
                run_mix(&s, &MemSpec::lpddr4_3200(), policy);
            prop_assert_eq!(errors, 0, "timing violations under {:?}", policy);
            prop_assert_eq!(accepted, completed, "transactions lost under {:?}", policy);
        }
    }
}

#[test]
fn every_spec_schedules_refreshes_on_long_runs() {
    // Deterministic long run: refresh must fire (and stay legal) for
    // every spec's tREFI/tRFC pair.
    for spec in MemSpec::all() {
        let steps: Vec<Step> = (0..120)
            .map(|i| Step {
                gap: 5,
                block: (i * 7919) % (1 << 22),
                write: i % 3 == 0,
            })
            .collect();
        let (errors, accepted, completed, refreshes) = run_mix(&steps, &spec, RowPolicy::Open);
        assert_eq!(errors, 0, "{}", spec.name);
        assert_eq!(accepted, completed, "{}", spec.name);
        assert!(refreshes > 0, "{} never refreshed", spec.name);
    }
}
