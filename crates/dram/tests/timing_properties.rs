//! Property-based tests: arbitrary transaction mixes never produce a
//! DDR3 timing violation (verified by the independent auditor), never
//! lose transactions, and keep energy counters consistent.

use bump_dram::{DramConfig, MemoryController, RowPolicy, Transaction};
use bump_types::{BlockAddr, Interleaving, TrafficClass};
use proptest::prelude::*;

#[derive(Clone, Debug)]
struct Step {
    gap: u8,
    block: u64,
    write: bool,
}

fn steps() -> impl Strategy<Value = Vec<Step>> {
    prop::collection::vec(
        (0u8..6, 0u64..1 << 22, any::<bool>()).prop_map(|(gap, block, write)| Step {
            gap,
            block,
            write,
        }),
        1..160,
    )
}

fn run_mix(steps: &[Step], policy: RowPolicy, interleaving: Interleaving) -> (usize, u64, u64) {
    let mut cfg = DramConfig::paper_open_row();
    cfg.policy = policy;
    cfg.interleaving = interleaving;
    cfg.audit = true;
    let mut mc = MemoryController::new(cfg);
    let mut now = 0u64;
    let mut done = Vec::new();
    let mut accepted = 0u64;
    for s in steps {
        for _ in 0..s.gap {
            mc.tick(now, &mut done);
            now += 1;
        }
        let block = BlockAddr::from_index(s.block);
        let txn = if s.write {
            Transaction::write(block, TrafficClass::DemandWriteback, 0)
        } else {
            Transaction::read(block, TrafficClass::Demand, 0)
        };
        if mc.try_enqueue(txn, now).is_ok() {
            accepted += 1;
        }
    }
    // Drain: every accepted transaction must complete.
    for _ in 0..300_000 {
        if done.len() as u64 == accepted {
            break;
        }
        mc.tick(now, &mut done);
        now += 1;
    }
    (mc.audit_errors(), accepted, done.len() as u64)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Open-row + region interleaving: legal and lossless.
    #[test]
    fn open_row_region_interleaving_is_legal(s in steps()) {
        let (errors, accepted, completed) = run_mix(&s, RowPolicy::Open, Interleaving::Region);
        prop_assert_eq!(errors, 0, "timing violations");
        prop_assert_eq!(accepted, completed, "transactions lost");
    }

    /// Close-row + block interleaving: legal and lossless.
    #[test]
    fn close_row_block_interleaving_is_legal(s in steps()) {
        let (errors, accepted, completed) = run_mix(&s, RowPolicy::Close, Interleaving::Block);
        prop_assert_eq!(errors, 0, "timing violations");
        prop_assert_eq!(accepted, completed, "transactions lost");
    }

    /// Energy counters match completions: one burst per transaction,
    /// and at least one activation when anything completed.
    #[test]
    fn energy_counters_track_completions(s in steps()) {
        let mut cfg = DramConfig::paper_open_row();
        cfg.audit = true;
        let mut mc = MemoryController::new(cfg);
        let mut now = 0u64;
        let mut done = Vec::new();
        let mut accepted = 0u64;
        for st in &s {
            let block = BlockAddr::from_index(st.block);
            let txn = if st.write {
                Transaction::write(block, TrafficClass::DemandWriteback, 0)
            } else {
                Transaction::read(block, TrafficClass::Demand, 0)
            };
            if mc.try_enqueue(txn, now).is_ok() {
                accepted += 1;
            }
            mc.tick(now, &mut done);
            now += 1;
        }
        for _ in 0..300_000 {
            if done.len() as u64 == accepted {
                break;
            }
            mc.tick(now, &mut done);
            now += 1;
        }
        let e = mc.energy();
        // Forwarded reads (write-queue hits) complete without a burst,
        // so bursts never exceed completions but may undercount them.
        prop_assert!(e.reads + e.writes <= done.len() as u64);
        if done.iter().any(|c| !c.row_hit) {
            prop_assert!(e.activations > 0);
        }
    }

    /// Row-hit flags are consistent: the first access after idle start
    /// is never a row hit under the close policy.
    #[test]
    fn close_policy_lone_accesses_never_hit(block in 0u64..1 << 22) {
        let mut cfg = DramConfig::paper_close_row();
        cfg.audit = true;
        let mut mc = MemoryController::new(cfg);
        let mut done = Vec::new();
        mc.try_enqueue(
            Transaction::read(BlockAddr::from_index(block), TrafficClass::Demand, 0),
            0,
        )
        .unwrap();
        for now in 0..500 {
            mc.tick(now, &mut done);
        }
        prop_assert_eq!(done.len(), 1);
        prop_assert!(!done[0].row_hit);
        prop_assert_eq!(mc.audit_errors(), 0);
    }
}
