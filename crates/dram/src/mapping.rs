//! Physical-address ⇄ DRAM-coordinate mapping.
//!
//! Both interleavings follow the paper's addressing scheme
//! `Row:ColumnHigh:Rank:Bank:Channel:ColumnLow:ByteOffset` over 8-byte
//! DRAM column words (§IV.D and §V.A):
//!
//! * **Block interleaving** (Base-close): `ColumnLow` is 3 bits, so one
//!   64-byte cache block is contiguous and consecutive blocks rotate
//!   across channels, banks, and ranks — maximum parallelism.
//! * **Region interleaving** (Base-open, BuMP): `ColumnLow` is 7 bits,
//!   so an entire 1KB region is contiguous within one DRAM row of one
//!   bank — bulk transfers hit the row buffer.

use bump_types::{BlockAddr, DramGeometry, Interleaving, BLOCK_OFFSET_BITS};

/// Bits addressing one 8-byte DRAM column word.
const WORD_BITS: u32 = 3;

/// Word bits per cache block (a 64B block spans 8 column words).
const WORDS_PER_BLOCK_BITS: u32 = BLOCK_OFFSET_BITS - WORD_BITS;

/// The location of a cache block in the memory system.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct DramCoord {
    /// Memory channel.
    pub channel: u32,
    /// Rank within the channel.
    pub rank: u32,
    /// Bank within the rank.
    pub bank: u32,
    /// Row within the bank (the DRAM page).
    pub row: u64,
    /// Block-granular column within the row (0..blocks_per_row).
    pub col_block: u32,
}

impl DramCoord {
    /// A dense index identifying this coordinate's bank across the whole
    /// memory system.
    pub fn global_bank(self, geom: DramGeometry) -> u32 {
        (self.channel * geom.ranks_per_channel + self.rank) * geom.banks_per_rank + self.bank
    }
}

/// Translates cache-block addresses to DRAM coordinates under a chosen
/// interleaving.
#[derive(Clone, Copy, Debug)]
pub struct AddressMapper {
    geom: DramGeometry,
    interleaving: Interleaving,
    ch_bits: u32,
    rank_bits: u32,
    bank_bits: u32,
    col_lo_bits: u32,
    col_hi_bits: u32,
    row_bits: u32,
}

impl AddressMapper {
    /// Creates a mapper for `geom` with the given interleaving.
    ///
    /// # Panics
    ///
    /// Panics if any geometry dimension is not a power of two, or if the
    /// row is too small to hold one `ColumnLow` unit of the chosen
    /// interleaving.
    pub fn new(geom: DramGeometry, interleaving: Interleaving) -> Self {
        assert!(geom.channels.is_power_of_two(), "channels must be 2^n");
        assert!(
            geom.ranks_per_channel.is_power_of_two(),
            "ranks must be 2^n"
        );
        assert!(geom.banks_per_rank.is_power_of_two(), "banks must be 2^n");
        assert!(geom.row_bytes.is_power_of_two(), "row size must be 2^n");

        let total_col_bits = geom.row_bytes.trailing_zeros() - WORD_BITS;
        // Block interleaving: ColumnLow covers exactly one cache block
        // (64B = 8 words = 3 bits). Region interleaving: ColumnLow covers
        // one 1KB region (128 words = 7 bits).
        let col_lo_bits = match interleaving {
            Interleaving::Block => BLOCK_OFFSET_BITS - WORD_BITS,
            Interleaving::Region => 10 - WORD_BITS,
        };
        assert!(
            col_lo_bits <= total_col_bits,
            "row of {} bytes is too small for the interleaving unit",
            geom.row_bytes
        );
        let capacity_bits = geom.capacity_bytes.trailing_zeros();
        let ch_bits = geom.channels.trailing_zeros();
        let rank_bits = geom.ranks_per_channel.trailing_zeros();
        let bank_bits = geom.banks_per_rank.trailing_zeros();
        let col_hi_bits = total_col_bits - col_lo_bits;
        let row_bits = capacity_bits - WORD_BITS - total_col_bits - ch_bits - rank_bits - bank_bits;
        AddressMapper {
            geom,
            interleaving,
            ch_bits,
            rank_bits,
            bank_bits,
            col_lo_bits,
            col_hi_bits,
            row_bits,
        }
    }

    /// The geometry this mapper was built for.
    pub fn geometry(&self) -> DramGeometry {
        self.geom
    }

    /// The interleaving this mapper implements.
    pub fn interleaving(&self) -> Interleaving {
        self.interleaving
    }

    /// Maps a cache block to its DRAM coordinate.
    ///
    /// Addresses beyond the installed capacity wrap within the row bits
    /// (the simulator's synthetic address space is virtually unbounded).
    pub fn decode(&self, block: BlockAddr) -> DramCoord {
        // Work in column-word units; a 64B block is 8 words, so the low
        // WORDS_PER_BLOCK_BITS word bits are zero for block addresses.
        let mut addr = block.index() << WORDS_PER_BLOCK_BITS;
        let mut take = |bits: u32| -> u64 {
            let v = addr & ((1u64 << bits) - 1);
            addr >>= bits;
            v
        };
        let col_lo = take(self.col_lo_bits);
        let channel = take(self.ch_bits) as u32;
        let bank = take(self.bank_bits) as u32;
        let rank = take(self.rank_bits) as u32;
        let col_hi = take(self.col_hi_bits);
        let row = take(self.row_bits);

        // Reassemble the column: ColumnHigh above ColumnLow, then convert
        // word-granular to block-granular.
        let col_words = (col_hi << self.col_lo_bits) | col_lo;
        let col_block = (col_words >> WORDS_PER_BLOCK_BITS) as u32;
        DramCoord {
            channel,
            rank,
            bank,
            row,
            col_block,
        }
    }

    /// Inverse of [`decode`](Self::decode) for addresses within capacity.
    pub fn encode(&self, coord: DramCoord) -> BlockAddr {
        let col_words = u64::from(coord.col_block) << WORDS_PER_BLOCK_BITS;
        let col_lo = col_words & ((1u64 << self.col_lo_bits) - 1);
        let col_hi = col_words >> self.col_lo_bits;

        let mut addr = coord.row;
        addr = (addr << self.col_hi_bits) | col_hi;
        addr = (addr << self.rank_bits) | u64::from(coord.rank);
        addr = (addr << self.bank_bits) | u64::from(coord.bank);
        addr = (addr << self.ch_bits) | u64::from(coord.channel);
        addr = (addr << self.col_lo_bits) | col_lo;
        BlockAddr::from_index(addr >> WORDS_PER_BLOCK_BITS)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bump_types::RegionConfig;

    fn mappers() -> [AddressMapper; 2] {
        [
            AddressMapper::new(DramGeometry::paper(), Interleaving::Block),
            AddressMapper::new(DramGeometry::paper(), Interleaving::Region),
        ]
    }

    #[test]
    fn decode_encode_round_trip() {
        for m in mappers() {
            for i in [0u64, 1, 2, 15, 16, 127, 128, 1 << 20, (1 << 27) - 1] {
                let b = BlockAddr::from_index(i);
                let c = m.decode(b);
                assert_eq!(
                    m.encode(c),
                    b,
                    "round trip failed for {i} ({:?})",
                    m.interleaving()
                );
            }
        }
    }

    #[test]
    fn region_interleaving_keeps_region_in_one_row() {
        let m = AddressMapper::new(DramGeometry::paper(), Interleaving::Region);
        let region = RegionConfig::kilobyte();
        let base = BlockAddr::from_index(0xABCD0);
        let r = base.region(region);
        let first = m.decode(r.block_at(region, 0));
        for b in r.blocks(region) {
            let c = m.decode(b);
            assert_eq!(
                (c.channel, c.rank, c.bank, c.row),
                (first.channel, first.rank, first.bank, first.row),
                "block {b:?} left the row"
            );
        }
    }

    #[test]
    fn region_interleaving_consecutive_regions_rotate_channels() {
        let m = AddressMapper::new(DramGeometry::paper(), Interleaving::Region);
        let region = RegionConfig::kilobyte();
        let r0 = BlockAddr::from_index(0).region(region);
        let r1 = BlockAddr::from_index(16).region(region);
        let c0 = m.decode(r0.block_at(region, 0));
        let c1 = m.decode(r1.block_at(region, 0));
        assert_ne!(c0.channel, c1.channel, "adjacent regions share a channel");
    }

    #[test]
    fn block_interleaving_consecutive_blocks_rotate_channels() {
        let m = AddressMapper::new(DramGeometry::paper(), Interleaving::Block);
        let c0 = m.decode(BlockAddr::from_index(0));
        let c1 = m.decode(BlockAddr::from_index(1));
        assert_ne!(c0.channel, c1.channel, "adjacent blocks share a channel");
    }

    #[test]
    fn block_interleaving_spreads_region_across_banks() {
        let m = AddressMapper::new(DramGeometry::paper(), Interleaving::Block);
        let region = RegionConfig::kilobyte();
        let r = BlockAddr::from_index(0x5000).region(region);
        let distinct: std::collections::HashSet<u32> = r
            .blocks(region)
            .map(|b| m.decode(b).global_bank(DramGeometry::paper()))
            .collect();
        assert!(
            distinct.len() > 1,
            "block interleaving kept region in one bank"
        );
    }

    #[test]
    fn coordinates_stay_within_geometry() {
        let g = DramGeometry::paper();
        for m in mappers() {
            for i in (0..200_000u64).step_by(977) {
                let c = m.decode(BlockAddr::from_index(i));
                assert!(c.channel < g.channels);
                assert!(c.rank < g.ranks_per_channel);
                assert!(c.bank < g.banks_per_rank);
                assert!(u64::from(c.col_block) < g.blocks_per_row());
                assert!(c.row < g.rows_per_bank());
            }
        }
    }

    #[test]
    fn global_bank_is_dense_and_unique() {
        let g = DramGeometry::paper();
        let mut seen = std::collections::HashSet::new();
        for ch in 0..g.channels {
            for rk in 0..g.ranks_per_channel {
                for bk in 0..g.banks_per_rank {
                    let c = DramCoord {
                        channel: ch,
                        rank: rk,
                        bank: bk,
                        row: 0,
                        col_block: 0,
                    };
                    assert!(seen.insert(c.global_bank(g)));
                }
            }
        }
        assert_eq!(seen.len() as u32, g.total_banks());
        assert_eq!(*seen.iter().max().unwrap(), g.total_banks() - 1);
    }
}
