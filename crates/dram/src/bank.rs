//! Per-bank and per-rank DDR3 timing state.
//!
//! A [`Bank`] tracks its open row and the earliest cycle at which each
//! command class may legally issue; a [`RankTimer`] tracks rank-wide
//! constraints (tRRD, tFAW, tWTR, refresh). The scheduler in
//! [`crate::channel`] consults both before issuing any command.

use bump_types::{DramTiming, MemCycle};
use std::collections::VecDeque;

/// DDR3 command classes the model issues.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CommandKind {
    /// Open a row (copy it into the row buffer).
    Activate,
    /// Column read burst from the open row.
    Read,
    /// Column read burst with auto-precharge.
    ReadAuto,
    /// Column write burst into the open row.
    Write,
    /// Column write burst with auto-precharge.
    WriteAuto,
    /// Close the open row.
    Precharge,
    /// Rank-wide refresh.
    Refresh,
}

impl CommandKind {
    /// Whether this is a column (data-moving) command.
    pub fn is_column(self) -> bool {
        matches!(
            self,
            CommandKind::Read | CommandKind::ReadAuto | CommandKind::Write | CommandKind::WriteAuto
        )
    }

    /// Whether this column command moves data toward DRAM.
    pub fn is_write_column(self) -> bool {
        matches!(self, CommandKind::Write | CommandKind::WriteAuto)
    }
}

/// Observable state of a bank.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BankState {
    /// All rows closed.
    Precharged,
    /// A row is open in the row buffer.
    Active {
        /// The open row.
        row: u64,
    },
}

/// One DRAM bank: open-row bookkeeping plus earliest-issue times for
/// each command class.
#[derive(Clone, Debug)]
pub struct Bank {
    open_row: Option<u64>,
    /// Earliest cycle an ACT may issue (tRC after previous ACT, tRP
    /// after a precharge, tRFC after refresh).
    earliest_act: MemCycle,
    /// Earliest cycle a column command may issue to the open row (tRCD).
    earliest_col: MemCycle,
    /// Earliest cycle a PRE may issue (tRAS after ACT, tRTP after READ,
    /// write-recovery tWR after a write burst).
    earliest_pre: MemCycle,
    /// Cycle of the last ACT, for tRC accounting.
    last_act: Option<MemCycle>,
}

impl Default for Bank {
    fn default() -> Self {
        Bank::new()
    }
}

impl Bank {
    /// A freshly initialized (precharged) bank.
    pub fn new() -> Self {
        Bank {
            open_row: None,
            earliest_act: 0,
            earliest_col: 0,
            earliest_pre: 0,
            last_act: None,
        }
    }

    /// Current observable state.
    pub fn state(&self) -> BankState {
        match self.open_row {
            Some(row) => BankState::Active { row },
            None => BankState::Precharged,
        }
    }

    /// The row currently held in the row buffer, if any.
    pub fn open_row(&self) -> Option<u64> {
        self.open_row
    }

    /// Whether an ACT command may issue at `now` (bank-local constraints
    /// only; the rank's tRRD/tFAW are checked by the rank timer).
    pub fn can_activate(&self, now: MemCycle) -> bool {
        self.open_row.is_none() && now >= self.earliest_act
    }

    /// Issues an ACT for `row` at `now`.
    ///
    /// # Panics
    ///
    /// Panics (debug) if the activation is not legal at `now`.
    pub fn activate(&mut self, now: MemCycle, row: u64, t: &DramTiming) {
        debug_assert!(self.can_activate(now), "illegal ACT at {now}");
        self.open_row = Some(row);
        self.earliest_col = now + t.t_rcd;
        self.earliest_pre = now + t.t_ras;
        self.earliest_act = now + t.t_rc;
        self.last_act = Some(now);
    }

    /// Whether a column command for `row` may issue at `now`
    /// (bank-local constraints only).
    pub fn can_column(&self, now: MemCycle, row: u64) -> bool {
        self.open_row == Some(row) && now >= self.earliest_col
    }

    /// Issues a read burst at `now`; returns the cycle the data burst
    /// finishes on the bus. With `auto`, the row auto-precharges.
    pub fn read(&mut self, now: MemCycle, t: &DramTiming, auto: bool) -> MemCycle {
        debug_assert!(
            self.open_row.is_some() && now >= self.earliest_col,
            "illegal READ at {now}"
        );
        let data_end = now + t.t_cas + t.t_burst;
        self.earliest_pre = self.earliest_pre.max(now + t.t_rtp);
        if auto {
            self.auto_precharge(t);
        }
        data_end
    }

    /// Issues a write burst at `now`; returns the cycle the data burst
    /// finishes on the bus. With `auto`, the row auto-precharges.
    pub fn write(&mut self, now: MemCycle, t: &DramTiming, auto: bool) -> MemCycle {
        debug_assert!(
            self.open_row.is_some() && now >= self.earliest_col,
            "illegal WRITE at {now}"
        );
        let data_end = now + t.cwl() + t.t_burst;
        self.earliest_pre = self.earliest_pre.max(data_end + t.t_wr);
        if auto {
            self.auto_precharge(t);
        }
        data_end
    }

    /// Whether a PRE may issue at `now`.
    pub fn can_precharge(&self, now: MemCycle) -> bool {
        self.open_row.is_some() && now >= self.earliest_pre
    }

    /// Issues a PRE at `now`.
    pub fn precharge(&mut self, now: MemCycle, t: &DramTiming) {
        debug_assert!(self.can_precharge(now), "illegal PRE at {now}");
        self.open_row = None;
        self.earliest_act = self.earliest_act.max(now + t.t_rp);
    }

    /// Closes the row as part of an auto-precharging column command. The
    /// internal precharge starts once tRAS/tRTP/tWR allow and takes tRP.
    fn auto_precharge(&mut self, t: &DramTiming) {
        let pre_start = self.earliest_pre;
        self.open_row = None;
        self.earliest_act = self.earliest_act.max(pre_start + t.t_rp);
    }

    /// Forces the bank precharged for a refresh (caller guarantees the
    /// row is already closed) and blocks activates until `ready`.
    pub fn refresh_until(&mut self, ready: MemCycle) {
        debug_assert!(self.open_row.is_none(), "refresh with open row");
        self.earliest_act = self.earliest_act.max(ready);
    }

    /// Earliest cycle an ACT could legally issue (bank-local constraints
    /// only). Used by the event-driven scheduler horizon.
    pub fn earliest_activate(&self) -> MemCycle {
        self.earliest_act
    }

    /// Earliest cycle a column command to the open row could legally
    /// issue (bank-local constraints only).
    pub fn earliest_column(&self) -> MemCycle {
        self.earliest_col
    }

    /// Earliest cycle a PRE could legally issue.
    pub fn earliest_precharge(&self) -> MemCycle {
        self.earliest_pre
    }
}

/// Rank-wide timing constraints: tRRD, the four-activate window, the
/// write-to-read turnaround, and refresh scheduling.
#[derive(Clone, Debug)]
pub struct RankTimer {
    /// Issue times of recent ACTs (at most 4 retained) for tFAW.
    act_window: VecDeque<MemCycle>,
    /// Earliest next ACT due to tRRD.
    earliest_act: MemCycle,
    /// Earliest read column command due to tWTR after a write burst.
    earliest_read_col: MemCycle,
    /// When the next refresh falls due.
    refresh_due: MemCycle,
    /// Refresh in progress until this cycle.
    refresh_until: Option<MemCycle>,
    /// Number of banks currently holding an open row (kept by the
    /// channel; used for O(1) background-energy classification).
    pub open_banks: u32,
}

impl RankTimer {
    /// Creates a rank timer whose first refresh falls due at
    /// `first_refresh` (staggered across ranks by the channel).
    pub fn new(first_refresh: MemCycle) -> Self {
        RankTimer {
            act_window: VecDeque::with_capacity(4),
            earliest_act: 0,
            earliest_read_col: 0,
            refresh_due: first_refresh,
            refresh_until: None,
            open_banks: 0,
        }
    }

    /// Whether rank-level constraints allow an ACT at `now`.
    pub fn can_activate(&self, now: MemCycle, t: &DramTiming) -> bool {
        if now < self.earliest_act || self.refreshing(now) || self.refresh_pending(now) {
            return false;
        }
        if self.act_window.len() == 4 {
            // Fifth ACT must be at least tFAW after the fourth-last.
            if now < self.act_window[0] + t.t_faw {
                return false;
            }
        }
        true
    }

    /// Records an ACT at `now`.
    pub fn record_activate(&mut self, now: MemCycle, t: &DramTiming) {
        if self.act_window.len() == 4 {
            self.act_window.pop_front();
        }
        self.act_window.push_back(now);
        self.earliest_act = self.earliest_act.max(now + t.t_rrd);
    }

    /// Whether rank-level constraints allow a read column command at `now`.
    pub fn can_read_col(&self, now: MemCycle) -> bool {
        now >= self.earliest_read_col && !self.refreshing(now)
    }

    /// Whether a write column command may issue at `now`.
    pub fn can_write_col(&self, now: MemCycle) -> bool {
        !self.refreshing(now)
    }

    /// Records a write burst ending at `data_end` (arms tWTR).
    pub fn record_write_burst(&mut self, data_end: MemCycle, t: &DramTiming) {
        self.earliest_read_col = self.earliest_read_col.max(data_end + t.t_wtr);
    }

    /// Whether a refresh has fallen due (and not yet been issued).
    pub fn refresh_pending(&self, now: MemCycle) -> bool {
        self.refresh_until.is_none() && now >= self.refresh_due
    }

    /// Whether the rank is mid-refresh at `now`.
    pub fn refreshing(&self, now: MemCycle) -> bool {
        matches!(self.refresh_until, Some(until) if now < until)
    }

    /// Issues the refresh at `now` (all banks must be precharged);
    /// returns the cycle the rank becomes usable again.
    pub fn start_refresh(&mut self, now: MemCycle, t: &DramTiming) -> MemCycle {
        debug_assert!(self.refresh_pending(now), "no refresh pending");
        let done = now + t.rfc();
        self.refresh_until = Some(done);
        self.refresh_due += t.refi();
        done
    }

    /// Clears the in-progress marker once a refresh has completed.
    pub fn finish_refresh(&mut self, now: MemCycle) {
        if matches!(self.refresh_until, Some(until) if now >= until) {
            self.refresh_until = None;
        }
    }

    /// When the next refresh falls due (the rank-wide periodic event).
    pub fn refresh_due(&self) -> MemCycle {
        self.refresh_due
    }

    /// The cycle an in-progress refresh completes, if one is running.
    pub fn refresh_until(&self) -> Option<MemCycle> {
        self.refresh_until
    }

    /// Earliest cycle an ACT could legally issue under rank-level tRRD
    /// and tFAW constraints (refresh windows are accounted separately by
    /// the caller).
    pub fn earliest_activate(&self, t: &DramTiming) -> MemCycle {
        let mut e = self.earliest_act;
        if self.act_window.len() == 4 {
            e = e.max(self.act_window[0] + t.t_faw);
        }
        e
    }

    /// Earliest cycle a read column command could issue under tWTR.
    pub fn earliest_read_column(&self) -> MemCycle {
        self.earliest_read_col
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> DramTiming {
        bump_types::MemSpec::ddr3_1600().timing
    }

    #[test]
    fn activate_then_column_waits_trcd() {
        let t = t();
        let mut b = Bank::new();
        b.activate(0, 7, &t);
        assert!(!b.can_column(t.t_rcd - 1, 7));
        assert!(b.can_column(t.t_rcd, 7));
        assert!(
            !b.can_column(t.t_rcd, 8),
            "wrong row must not be accessible"
        );
    }

    #[test]
    fn precharge_waits_tras() {
        let t = t();
        let mut b = Bank::new();
        b.activate(0, 7, &t);
        assert!(!b.can_precharge(t.t_ras - 1));
        assert!(b.can_precharge(t.t_ras));
    }

    #[test]
    fn act_to_act_waits_trc() {
        let t = t();
        let mut b = Bank::new();
        b.activate(0, 7, &t);
        b.precharge(t.t_ras, &t);
        // tRC (39) dominates tRAS+tRP (28+11=39) here; both bind.
        assert!(!b.can_activate(t.t_rc - 1));
        assert!(b.can_activate(t.t_rc));
    }

    #[test]
    fn read_data_timing() {
        let t = t();
        let mut b = Bank::new();
        b.activate(0, 3, &t);
        let end = b.read(t.t_rcd, &t, false);
        assert_eq!(end, t.t_rcd + t.t_cas + t.t_burst);
        assert_eq!(b.open_row(), Some(3), "open policy keeps the row");
    }

    #[test]
    fn write_arms_write_recovery() {
        let t = t();
        let mut b = Bank::new();
        b.activate(0, 3, &t);
        let end = b.write(t.t_rcd, &t, false);
        assert!(!b.can_precharge(end + t.t_wr - 1));
        assert!(b.can_precharge(end + t.t_wr));
    }

    #[test]
    fn auto_precharge_closes_row_and_blocks_act() {
        let t = t();
        let mut b = Bank::new();
        b.activate(0, 3, &t);
        b.read(t.t_rcd, &t, true);
        assert_eq!(b.open_row(), None);
        // Internal precharge starts at earliest_pre = max(tRAS, rd+tRTP).
        let pre_start = t.t_ras.max(t.t_rcd + t.t_rtp);
        assert!(!b.can_activate(pre_start + t.t_rp - 1));
        assert!(b.can_activate(t.t_rc.max(pre_start + t.t_rp)));
    }

    #[test]
    fn rank_trrd_spacing() {
        let t = t();
        let mut r = RankTimer::new(1_000_000);
        assert!(r.can_activate(0, &t));
        r.record_activate(0, &t);
        assert!(!r.can_activate(t.t_rrd - 1, &t));
        assert!(r.can_activate(t.t_rrd, &t));
    }

    #[test]
    fn rank_tfaw_limits_four_activates() {
        let t = t();
        let mut r = RankTimer::new(1_000_000);
        let mut now = 0;
        for _ in 0..4 {
            assert!(r.can_activate(now, &t));
            r.record_activate(now, &t);
            now += t.t_rrd;
        }
        // Fifth ACT must wait until tFAW after the first.
        assert!(!r.can_activate(now, &t));
        assert!(r.can_activate(t.t_faw, &t));
    }

    #[test]
    fn write_to_read_turnaround() {
        let t = t();
        let mut r = RankTimer::new(1_000_000);
        r.record_write_burst(100, &t);
        assert!(!r.can_read_col(100 + t.t_wtr - 1));
        assert!(r.can_read_col(100 + t.t_wtr));
        // Writes are unaffected by tWTR.
        assert!(r.can_write_col(100));
    }

    #[test]
    fn refresh_cycle() {
        let t = t();
        let mut r = RankTimer::new(10);
        assert!(!r.refresh_pending(9));
        assert!(r.refresh_pending(10));
        let done = r.start_refresh(10, &t);
        assert_eq!(done, 10 + t.rfc());
        assert!(r.refreshing(done - 1));
        assert!(!r.can_activate(done - 1, &t));
        r.finish_refresh(done);
        assert!(!r.refreshing(done));
        assert!(r.can_activate(done, &t));
        // Next refresh re-armed one tREFI later.
        assert!(!r.refresh_pending(done));
        assert!(r.refresh_pending(10 + t.refi()));
    }
}
