//! DRAM energy accounting (paper Table III, Micron-derived).
//!
//! The controller increments event counters; converting counts to joules
//! happens here so the same counters can be re-costed under different
//! energy parameters (used by the Figure 11 sensitivity sweep).

use bump_types::MemCycle;

// The parameter struct itself lives in `bump-types` so `MemSpec` can
// pair each platform with its own Table-III-style constants; this
// re-export keeps the established `bump_dram::DramEnergyParams` path.
pub use bump_types::DramEnergyParams;

/// Raw event counts accumulated by the memory controller.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DramEnergyCounters {
    /// Row activations issued.
    pub activations: u64,
    /// Read bursts issued.
    pub reads: u64,
    /// Write bursts issued.
    pub writes: u64,
    /// Refresh commands issued.
    pub refreshes: u64,
    /// Rank-cycles spent with at least one open row.
    pub active_rank_cycles: u64,
    /// Rank-cycles spent with all banks precharged.
    pub idle_rank_cycles: u64,
}

impl DramEnergyCounters {
    /// Adds another counter set (e.g. from another channel) into this one.
    pub fn merge(&mut self, other: &DramEnergyCounters) {
        self.activations += other.activations;
        self.reads += other.reads;
        self.writes += other.writes;
        self.refreshes += other.refreshes;
        self.active_rank_cycles += other.active_rank_cycles;
        self.idle_rank_cycles += other.idle_rank_cycles;
    }

    /// Costs the counters under `params`.
    pub fn cost(&self, params: &DramEnergyParams) -> DramEnergyBreakdown {
        let activation_nj = self.activations as f64 * params.activation_nj;
        let burst_nj = self.reads as f64 * params.read_nj + self.writes as f64 * params.write_nj;
        let io_nj = self.reads as f64 * params.read_io_nj + self.writes as f64 * params.write_io_nj;
        let active_ns = self.active_rank_cycles as f64 * params.cycle_ns;
        let idle_ns = self.idle_rank_cycles as f64 * params.cycle_ns;
        // P[W] × t[ns] = E[nJ].
        let background_nj =
            active_ns * params.background_active_w + idle_ns * params.background_idle_w;
        DramEnergyBreakdown {
            activation_nj,
            burst_nj,
            io_nj,
            background_nj,
        }
    }

    /// Total DRAM data-moving accesses (reads + writes).
    pub fn accesses(&self) -> u64 {
        self.reads + self.writes
    }

    /// Total rank-cycles observed (for elapsed-time bookkeeping).
    pub fn rank_cycles(&self) -> MemCycle {
        self.active_rank_cycles + self.idle_rank_cycles
    }
}

/// DRAM energy split the way the paper plots it (ACT / Burst+IO / BKG).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct DramEnergyBreakdown {
    /// Row-activation energy, nanojoules.
    pub activation_nj: f64,
    /// Data-burst energy, nanojoules.
    pub burst_nj: f64,
    /// I/O and termination energy, nanojoules.
    pub io_nj: f64,
    /// Background (static + refresh) energy, nanojoules.
    pub background_nj: f64,
}

impl DramEnergyBreakdown {
    /// Dynamic energy (everything except background), nanojoules.
    pub fn dynamic_nj(&self) -> f64 {
        self.activation_nj + self.burst_nj + self.io_nj
    }

    /// Burst plus I/O energy — the paper's "Burst/IO" bar segment.
    pub fn burst_io_nj(&self) -> f64 {
        self.burst_nj + self.io_nj
    }

    /// Total energy including background, nanojoules.
    pub fn total_nj(&self) -> f64 {
        self.dynamic_nj() + self.background_nj
    }

    /// Dynamic energy per access in nanojoules — the paper's
    /// "memory energy per access" metric (Figure 9 plots activation vs
    /// burst/IO; background is excluded there and shown in Figure 1).
    pub fn per_access_nj(&self, accesses: u64) -> f64 {
        if accesses == 0 {
            0.0
        } else {
            self.dynamic_nj() / accesses as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_read_with_activation_costs_activation_plus_burst() {
        let c = DramEnergyCounters {
            activations: 1,
            reads: 1,
            ..Default::default()
        };
        let e = c.cost(&DramEnergyParams::paper());
        assert!((e.activation_nj - 29.7).abs() < 1e-9);
        assert!((e.burst_nj - 8.1).abs() < 1e-9);
        assert!((e.io_nj - 1.5).abs() < 1e-9);
        assert!((e.dynamic_nj() - 39.3).abs() < 1e-9);
    }

    #[test]
    fn row_hits_amortize_activation() {
        // 16 reads, 1 activation vs 16 reads, 16 activations.
        let amortized = DramEnergyCounters {
            activations: 1,
            reads: 16,
            ..Default::default()
        };
        let thrashing = DramEnergyCounters {
            activations: 16,
            reads: 16,
            ..Default::default()
        };
        let p = DramEnergyParams::paper();
        let a = amortized.cost(&p).per_access_nj(16);
        let t = thrashing.cost(&p).per_access_nj(16);
        // Paper §II.B: fetching 16 blocks with one activation saves
        // ~65% of memory energy.
        assert!(a < 0.4 * t, "amortized {a} vs thrashing {t}");
    }

    #[test]
    fn background_power_uses_rank_state() {
        let c = DramEnergyCounters {
            active_rank_cycles: 800, // 1µs at 1.25ns
            idle_rank_cycles: 800,
            ..Default::default()
        };
        let e = c.cost(&DramEnergyParams::paper());
        let expected = 1000.0 * 0.770 + 1000.0 * 0.540;
        assert!((e.background_nj - expected).abs() < 1e-6);
    }

    #[test]
    fn merge_sums_counters() {
        let mut a = DramEnergyCounters {
            activations: 1,
            reads: 2,
            writes: 3,
            refreshes: 4,
            active_rank_cycles: 5,
            idle_rank_cycles: 6,
        };
        a.merge(&a.clone());
        assert_eq!(a.activations, 2);
        assert_eq!(a.accesses(), 10);
        assert_eq!(a.rank_cycles(), 22);
    }

    #[test]
    fn per_access_of_zero_accesses_is_zero() {
        assert_eq!(DramEnergyBreakdown::default().per_access_nj(0), 0.0);
    }
}
