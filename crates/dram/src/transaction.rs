//! Memory transactions: block-granular reads and writes queued at the
//! memory controller.

use bump_types::{BlockAddr, CoreId, MemCycle, TrafficClass};

/// Unique identifier of a transaction, assigned at enqueue time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TransactionId(pub u64);

/// A block-granular memory transaction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Transaction {
    /// The cache block being transferred.
    pub block: BlockAddr,
    /// Whether this moves data toward DRAM (a writeback).
    pub is_write: bool,
    /// Who injected the request (demand, prefetcher, BuMP, writeback…).
    pub class: TrafficClass,
    /// Core responsible for the request.
    pub core: CoreId,
}

impl Transaction {
    /// A DRAM read of `block` on behalf of `class`.
    ///
    /// # Panics
    ///
    /// Panics if `class` is a write class.
    pub fn read(block: BlockAddr, class: TrafficClass, core: CoreId) -> Self {
        assert!(
            class.is_read(),
            "read transaction with write class {class:?}"
        );
        Transaction {
            block,
            is_write: false,
            class,
            core,
        }
    }

    /// A DRAM write (writeback) of `block` on behalf of `class`.
    ///
    /// # Panics
    ///
    /// Panics if `class` is a read class.
    pub fn write(block: BlockAddr, class: TrafficClass, core: CoreId) -> Self {
        assert!(
            class.is_write(),
            "write transaction with read class {class:?}"
        );
        Transaction {
            block,
            is_write: true,
            class,
            core,
        }
    }
}

/// A transaction the controller has finished servicing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Completion {
    /// Identifier returned by `try_enqueue`.
    pub id: TransactionId,
    /// The original transaction.
    pub txn: Transaction,
    /// Cycle the transaction entered the controller.
    pub enqueued_at: MemCycle,
    /// Cycle the data burst finished on the bus.
    pub done_at: MemCycle,
    /// Whether the access was served from an already-open row.
    pub row_hit: bool,
    /// Whether serving it required closing a different open row first.
    pub row_conflict: bool,
}

impl Completion {
    /// Queueing + service latency in memory cycles.
    pub fn latency(&self) -> MemCycle {
        self.done_at - self.enqueued_at
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_constructors_enforce_class() {
        let b = BlockAddr::from_index(1);
        let r = Transaction::read(b, TrafficClass::Demand, 0);
        assert!(!r.is_write);
        let w = Transaction::write(b, TrafficClass::DemandWriteback, 0);
        assert!(w.is_write);
    }

    #[test]
    #[should_panic(expected = "write class")]
    fn read_rejects_writeback_class() {
        Transaction::read(BlockAddr::from_index(0), TrafficClass::DemandWriteback, 0);
    }

    #[test]
    #[should_panic(expected = "read class")]
    fn write_rejects_demand_class() {
        Transaction::write(BlockAddr::from_index(0), TrafficClass::Demand, 0);
    }
}
