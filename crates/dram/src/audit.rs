//! Independent DDR3 timing checker.
//!
//! The [`TimingAuditor`] receives every command the scheduler issues and
//! re-validates the full constraint set from first principles, with its
//! own bookkeeping, so a scheduler bug cannot hide behind its own state.
//! It is wired into the channel behind a flag and used heavily by unit,
//! integration, and property tests.

use crate::bank::CommandKind;
use bump_types::{DramTiming, MemCycle};
use std::collections::VecDeque;

/// A command the scheduler issued, as seen by the auditor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CommandRecord {
    /// Issue cycle.
    pub at: MemCycle,
    /// Rank within the channel.
    pub rank: u32,
    /// Bank within the rank.
    pub bank: u32,
    /// Command class.
    pub kind: CommandKind,
    /// Row operand (meaningful for ACT and column commands).
    pub row: u64,
}

/// A detected timing violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AuditError {
    /// The offending command.
    pub command: CommandRecord,
    /// Which constraint was violated.
    pub constraint: &'static str,
}

#[derive(Clone, Debug, Default)]
struct BankAudit {
    open_row: Option<u64>,
    last_act: Option<MemCycle>,
    /// Cycle at which the (possibly auto-) precharge completes (tRP done).
    pre_done: MemCycle,
    last_read: Option<MemCycle>,
    last_write_end: Option<MemCycle>,
}

#[derive(Clone, Debug, Default)]
struct RankAudit {
    acts: VecDeque<MemCycle>,
    last_write_end: Option<MemCycle>,
    refresh_until: MemCycle,
}

/// Re-validates every issued command against the DDR3 constraint set.
#[derive(Clone, Debug, Default)]
pub struct TimingAuditor {
    banks: Vec<Vec<BankAudit>>,
    ranks: Vec<RankAudit>,
    bus: Vec<(MemCycle, MemCycle)>,
    errors: Vec<AuditError>,
    commands: u64,
}

impl TimingAuditor {
    /// Creates an empty auditor; rank/bank state grows on demand.
    pub fn new() -> Self {
        TimingAuditor::default()
    }

    /// Violations detected so far.
    pub fn errors(&self) -> &[AuditError] {
        &self.errors
    }

    /// Number of commands validated.
    pub fn commands_checked(&self) -> u64 {
        self.commands
    }

    fn ensure(&mut self, rank: u32, bank: u32) {
        while self.ranks.len() <= rank as usize {
            self.ranks.push(RankAudit::default());
            self.banks.push(Vec::new());
        }
        while self.banks[rank as usize].len() <= bank as usize {
            self.banks[rank as usize].push(BankAudit::default());
        }
    }

    /// Records and validates one command.
    pub fn record(
        &mut self,
        at: MemCycle,
        rank: u32,
        bank: u32,
        kind: CommandKind,
        row: u64,
        t: &DramTiming,
    ) {
        self.ensure(rank, bank);
        self.commands += 1;
        let rec = CommandRecord {
            at,
            rank,
            bank,
            kind,
            row,
        };
        let fail = |constraint: &'static str, errors: &mut Vec<AuditError>| {
            errors.push(AuditError {
                command: rec,
                constraint,
            });
        };
        let mut errors = std::mem::take(&mut self.errors);
        match kind {
            CommandKind::Activate => {
                let r = &self.ranks[rank as usize];
                if at < r.refresh_until {
                    fail("ACT during refresh", &mut errors);
                }
                if r.acts.len() >= 4 {
                    let fourth_last = r.acts[r.acts.len() - 4];
                    if at < fourth_last + t.t_faw {
                        fail("tFAW", &mut errors);
                    }
                }
                if let Some(&last) = r.acts.back() {
                    if at < last + t.t_rrd {
                        fail("tRRD", &mut errors);
                    }
                }
                let b = &self.banks[rank as usize][bank as usize];
                if b.open_row.is_some() {
                    fail("ACT to open bank", &mut errors);
                }
                if let Some(last) = b.last_act {
                    if at < last + t.t_rc {
                        fail("tRC", &mut errors);
                    }
                }
                if at < b.pre_done {
                    fail("tRP", &mut errors);
                }
                let b = &mut self.banks[rank as usize][bank as usize];
                b.open_row = Some(row);
                b.last_act = Some(at);
                b.last_read = None;
                b.last_write_end = None;
                let r = &mut self.ranks[rank as usize];
                r.acts.push_back(at);
                if r.acts.len() > 8 {
                    r.acts.pop_front();
                }
            }
            CommandKind::Read
            | CommandKind::ReadAuto
            | CommandKind::Write
            | CommandKind::WriteAuto => {
                let is_write = kind.is_write_column();
                let r = &self.ranks[rank as usize];
                if at < r.refresh_until {
                    fail("column during refresh", &mut errors);
                }
                if !is_write {
                    if let Some(wend) = r.last_write_end {
                        if at < wend + t.t_wtr {
                            fail("tWTR", &mut errors);
                        }
                    }
                }
                let b = &self.banks[rank as usize][bank as usize];
                match b.open_row {
                    None => fail("column to closed bank", &mut errors),
                    Some(open) if open != row => fail("column to wrong row", &mut errors),
                    _ => {}
                }
                if let Some(act) = b.last_act {
                    if at < act + t.t_rcd {
                        fail("tRCD", &mut errors);
                    }
                }
                let data_start = at + if is_write { t.cwl() } else { t.t_cas };
                let data_end = data_start + t.t_burst;
                for &(s, e) in &self.bus {
                    if data_start < e && s < data_end {
                        fail("data bus overlap", &mut errors);
                    }
                }
                self.bus.push((data_start, data_end));
                if self.bus.len() > 16 {
                    self.bus.remove(0);
                }
                let b = &mut self.banks[rank as usize][bank as usize];
                if is_write {
                    b.last_write_end = Some(data_end);
                    self.ranks[rank as usize].last_write_end = Some(data_end);
                } else {
                    b.last_read = Some(at);
                }
                if matches!(kind, CommandKind::ReadAuto | CommandKind::WriteAuto) {
                    // Implicit precharge once tRAS/tRTP/tWR allow.
                    let act = b.last_act.unwrap_or(0);
                    let pre_start = if is_write {
                        (act + t.t_ras).max(data_end + t.t_wr)
                    } else {
                        (act + t.t_ras).max(at + t.t_rtp)
                    };
                    b.open_row = None;
                    b.pre_done = pre_start + t.t_rp;
                }
            }
            CommandKind::Precharge => {
                let b = &self.banks[rank as usize][bank as usize];
                if b.open_row.is_none() {
                    fail("PRE to closed bank", &mut errors);
                }
                if let Some(act) = b.last_act {
                    if at < act + t.t_ras {
                        fail("tRAS", &mut errors);
                    }
                }
                if let Some(rd) = b.last_read {
                    if at < rd + t.t_rtp {
                        fail("tRTP", &mut errors);
                    }
                }
                if let Some(wend) = b.last_write_end {
                    if at < wend + t.t_wr {
                        fail("tWR", &mut errors);
                    }
                }
                let b = &mut self.banks[rank as usize][bank as usize];
                b.open_row = None;
                b.pre_done = at + t.t_rp;
            }
            CommandKind::Refresh => {
                for (bi, b) in self.banks[rank as usize].iter().enumerate() {
                    if b.open_row.is_some() {
                        let _ = bi;
                        fail("REF with open bank", &mut errors);
                    }
                    if at < b.pre_done {
                        fail("REF before tRP", &mut errors);
                    }
                }
                let r = &mut self.ranks[rank as usize];
                r.refresh_until = at + t.rfc();
                for b in &mut self.banks[rank as usize] {
                    b.pre_done = b.pre_done.max(at + t.rfc());
                }
            }
        }
        self.errors = errors;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> DramTiming {
        bump_types::MemSpec::ddr3_1600().timing
    }

    #[test]
    fn legal_sequence_passes() {
        let t = t();
        let mut a = TimingAuditor::new();
        a.record(0, 0, 0, CommandKind::Activate, 5, &t);
        a.record(t.t_rcd, 0, 0, CommandKind::Read, 5, &t);
        a.record(t.t_ras, 0, 0, CommandKind::Precharge, 5, &t);
        a.record(t.t_rc, 0, 0, CommandKind::Activate, 9, &t);
        assert!(a.errors().is_empty(), "{:?}", a.errors());
        assert_eq!(a.commands_checked(), 4);
    }

    #[test]
    fn early_column_is_flagged() {
        let t = t();
        let mut a = TimingAuditor::new();
        a.record(0, 0, 0, CommandKind::Activate, 5, &t);
        a.record(t.t_rcd - 1, 0, 0, CommandKind::Read, 5, &t);
        assert_eq!(a.errors().len(), 1);
        assert_eq!(a.errors()[0].constraint, "tRCD");
    }

    #[test]
    fn wrong_row_is_flagged() {
        let t = t();
        let mut a = TimingAuditor::new();
        a.record(0, 0, 0, CommandKind::Activate, 5, &t);
        a.record(t.t_rcd, 0, 0, CommandKind::Read, 6, &t);
        assert!(a
            .errors()
            .iter()
            .any(|e| e.constraint == "column to wrong row"));
    }

    #[test]
    fn early_precharge_flagged_by_tras() {
        let t = t();
        let mut a = TimingAuditor::new();
        a.record(0, 0, 0, CommandKind::Activate, 5, &t);
        a.record(t.t_ras - 1, 0, 0, CommandKind::Precharge, 5, &t);
        assert!(a.errors().iter().any(|e| e.constraint == "tRAS"));
    }

    #[test]
    fn five_fast_acts_flagged_by_tfaw() {
        let t = t();
        let mut a = TimingAuditor::new();
        for i in 0..5u64 {
            a.record(i * t.t_rrd, 0, i as u32, CommandKind::Activate, 1, &t);
        }
        assert!(a.errors().iter().any(|e| e.constraint == "tFAW"));
    }

    #[test]
    fn bus_overlap_flagged() {
        let t = t();
        let mut a = TimingAuditor::new();
        a.record(0, 0, 0, CommandKind::Activate, 1, &t);
        a.record(0, 0, 1, CommandKind::Activate, 1, &t); // tRRD violation too
        a.record(t.t_rcd, 0, 0, CommandKind::Read, 1, &t);
        a.record(t.t_rcd + 1, 0, 1, CommandKind::Read, 1, &t);
        assert!(a
            .errors()
            .iter()
            .any(|e| e.constraint == "data bus overlap"));
    }
}
