//! The memory controller facade: address mapping, channel fan-out, and
//! system-wide DRAM statistics.

use crate::channel::{Channel, RowPolicy, WriteQueueConfig};
use crate::energy::DramEnergyCounters;
use crate::mapping::AddressMapper;
use crate::transaction::{Completion, Transaction, TransactionId};
use bump_types::{
    DramEnergyParams, DramGeometry, DramTiming, Interleaving, MemCycle, MemSpec, Ratio,
    TrafficClass,
};

/// Complete configuration of the memory system.
#[derive(Clone, Copy, Debug)]
pub struct DramConfig {
    /// Channel/rank/bank geometry.
    pub geometry: DramGeometry,
    /// DRAM timing set.
    pub timing: DramTiming,
    /// CPU clock cycles per memory bus cycle, times 1000 (the
    /// [`MemSpec::freq_ratio_milli`] of the platform in force).
    pub freq_ratio_milli: u64,
    /// Per-event energy constants of the platform in force
    /// ([`MemSpec::energy`]); the counters this controller accumulates
    /// are costed under these at report time.
    pub energy: DramEnergyParams,
    /// Row-buffer management policy.
    pub policy: RowPolicy,
    /// Address interleaving scheme.
    pub interleaving: Interleaving,
    /// Read transaction queue capacity per channel (paper: 64).
    pub read_queue_capacity: usize,
    /// Write queue configuration per channel.
    pub write_queue: WriteQueueConfig,
    /// Enable the independent timing auditor (slow; for tests).
    pub audit: bool,
}

impl DramConfig {
    /// FR-FCFS close-row with block interleaving (Base-close) on the
    /// platform described by `spec`.
    pub fn close_row(spec: &MemSpec) -> Self {
        DramConfig {
            geometry: spec.geometry,
            timing: spec.timing,
            freq_ratio_milli: spec.freq_ratio_milli,
            energy: spec.energy(),
            policy: RowPolicy::Close,
            interleaving: Interleaving::Block,
            read_queue_capacity: 64,
            write_queue: WriteQueueConfig::default(),
            audit: false,
        }
    }

    /// FR-FCFS open-row with region interleaving (Base-open / BuMP) on
    /// the platform described by `spec`.
    pub fn open_row(spec: &MemSpec) -> Self {
        DramConfig {
            policy: RowPolicy::Open,
            interleaving: Interleaving::Region,
            ..Self::close_row(spec)
        }
    }

    /// Base-close on the paper's DDR3-1600 platform.
    pub fn paper_close_row() -> Self {
        Self::close_row(&MemSpec::ddr3_1600())
    }

    /// Base-open / BuMP on the paper's DDR3-1600 platform.
    pub fn paper_open_row() -> Self {
        Self::open_row(&MemSpec::ddr3_1600())
    }

    /// Re-points this configuration at another memory platform,
    /// keeping the policy/interleaving/queue choices (which belong to
    /// the preset, not the platform).
    pub fn with_spec(mut self, spec: &MemSpec) -> Self {
        self.geometry = spec.geometry;
        self.timing = spec.timing;
        self.freq_ratio_milli = spec.freq_ratio_milli;
        self.energy = spec.energy();
        self
    }
}

/// Why an enqueue was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EnqueueError {
    /// The target channel's queue for this traffic direction is full;
    /// retry on a later cycle.
    QueueFull,
}

impl std::fmt::Display for EnqueueError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EnqueueError::QueueFull => write!(f, "transaction queue full"),
        }
    }
}

impl std::error::Error for EnqueueError {}

/// Aggregated DRAM statistics, split by traffic direction.
#[derive(Clone, Copy, Debug, Default)]
pub struct DramStats {
    /// Row-buffer hit ratio over reads.
    pub read_row_hits: Ratio,
    /// Row-buffer hit ratio over writes.
    pub write_row_hits: Ratio,
    /// Row conflicts (a different open row had to be closed first).
    pub row_conflicts: u64,
    /// Completed read transactions.
    pub reads_completed: u64,
    /// Completed write transactions.
    pub writes_completed: u64,
    /// Sum of read latencies (memory cycles) for average-latency reports.
    pub total_read_latency: u64,
    /// Completed reads that were demand (non-speculative) traffic.
    pub demand_reads_completed: u64,
    /// Sum of demand read latencies.
    pub total_demand_read_latency: u64,
    /// Row-buffer hits over demand reads only.
    pub demand_read_row_hits: Ratio,
    /// Row-buffer hits over speculative (prefetch/bulk) reads only.
    /// BuMP's bulk reads should hit at very high rates — that is the
    /// whole mechanism.
    pub spec_read_row_hits: Ratio,
}

impl DramStats {
    /// Row-buffer hit ratio over all accesses, the paper's headline
    /// locality metric (Figure 2 / Table IV / Figure 13).
    pub fn row_hit_ratio(&self) -> Ratio {
        self.read_row_hits + self.write_row_hits
    }

    /// Mean read latency in memory cycles.
    pub fn avg_read_latency(&self) -> f64 {
        if self.reads_completed == 0 {
            0.0
        } else {
            self.total_read_latency as f64 / self.reads_completed as f64
        }
    }
}

/// The processor-side memory controller: one scheduler per channel.
#[derive(Debug)]
pub struct MemoryController {
    config: DramConfig,
    mapper: AddressMapper,
    channels: Vec<Channel>,
    next_id: u64,
    stats: DramStats,
}

impl MemoryController {
    /// Builds the controller and its channels.
    pub fn new(config: DramConfig) -> Self {
        let mapper = AddressMapper::new(config.geometry, config.interleaving);
        let channels = (0..config.geometry.channels)
            .map(|c| {
                Channel::new(
                    config.geometry,
                    config.timing,
                    config.policy,
                    config.write_queue,
                    config.read_queue_capacity,
                    // Stagger refresh across channels too.
                    100 + u64::from(c) * 37,
                    config.audit,
                )
            })
            .collect();
        MemoryController {
            config,
            mapper,
            channels,
            next_id: 0,
            stats: DramStats::default(),
        }
    }

    /// The controller's configuration.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// The address mapper in force.
    pub fn mapper(&self) -> &AddressMapper {
        &self.mapper
    }

    /// Attempts to enqueue `txn` at memory cycle `now`.
    ///
    /// # Errors
    ///
    /// Returns [`EnqueueError::QueueFull`] when the target channel has no
    /// room; the caller should apply backpressure and retry later.
    pub fn try_enqueue(
        &mut self,
        txn: Transaction,
        now: MemCycle,
    ) -> Result<TransactionId, EnqueueError> {
        let coord = self.mapper.decode(txn.block);
        let ch = &mut self.channels[coord.channel as usize];
        if !ch.has_room(txn.is_write) {
            return Err(EnqueueError::QueueFull);
        }
        let id = TransactionId(self.next_id);
        self.next_id += 1;
        let ok = ch.enqueue(id, txn, coord, now);
        debug_assert!(ok, "has_room said yes but enqueue failed");
        Ok(id)
    }

    /// Whether the channel that owns `txn` can accept it right now.
    pub fn can_accept(&self, txn: &Transaction) -> bool {
        let coord = self.mapper.decode(txn.block);
        self.channels[coord.channel as usize].has_room(txn.is_write)
    }

    /// Promotes a queued speculative read of `block` to demand priority
    /// (called when a demand access merges into a prefetch MSHR).
    pub fn promote_to_demand(&mut self, block: bump_types::BlockAddr) -> bool {
        let coord = self.mapper.decode(block);
        self.channels[coord.channel as usize].promote_to_demand(block)
    }

    /// Advances every channel by one memory cycle, appending completions.
    pub fn tick(&mut self, now: MemCycle, completions: &mut Vec<Completion>) {
        let start = completions.len();
        for ch in &mut self.channels {
            ch.tick(now, completions);
        }
        for c in &completions[start..] {
            self.record_completion(c);
        }
    }

    /// Event-driven variant of [`MemoryController::tick`]: channels
    /// whose memoized horizon proves the cycle is a no-op only account
    /// background energy. Semantically identical to `tick` — the
    /// equivalence suite holds both paths to byte-identical reports.
    pub fn tick_event(&mut self, now: MemCycle, completions: &mut Vec<Completion>) {
        let start = completions.len();
        for ch in &mut self.channels {
            ch.tick_event(now, completions);
        }
        for c in &completions[start..] {
            self.record_completion(c);
        }
    }

    /// The earliest memory cycle `>= now` at which any channel could do
    /// something beyond background accounting (see
    /// [`Channel::next_event_at`]).
    pub fn next_event_at(&self, now: MemCycle) -> MemCycle {
        self.channels
            .iter()
            .map(|c| c.next_event_cached(now))
            .min()
            .unwrap_or(now)
    }

    /// Applies `cycles` consecutive no-op memory cycles to every
    /// channel in O(channels × ranks). Only legal when the caller has
    /// proven — via [`MemoryController::next_event_at`] — that no
    /// channel acts in the skipped window.
    pub fn skip_idle(&mut self, cycles: u64) {
        for ch in &mut self.channels {
            ch.skip_idle_cycles(cycles);
        }
    }

    /// Whether every channel is in the refresh-only idle regime (no
    /// queued or in-flight work, all banks precharged, no pre-span
    /// timing constraint gating a refresh) so a long idle span can be
    /// replayed in closed form by [`MemoryController::skip_refresh_idle`]
    /// instead of re-entering the tick path once per refresh.
    pub fn refresh_only_idle(&self) -> bool {
        self.channels.iter().all(Channel::refresh_only_idle)
    }

    /// Replays memory ticks `[m0, m0 + cycles)` on every channel in
    /// closed form: bulk background-energy accounting plus exact
    /// replay of each refresh the span contains. Only legal when
    /// [`MemoryController::refresh_only_idle`] holds at `m0`.
    pub fn skip_refresh_idle(&mut self, m0: MemCycle, cycles: u64) {
        for ch in &mut self.channels {
            ch.skip_refresh_idle(m0, cycles);
        }
    }

    /// Column commands issued across all channels — the only events
    /// that pop queue entries and so unblock backpressured enqueues.
    pub fn columns_issued(&self) -> u64 {
        self.channels.iter().map(|c| c.columns_issued()).sum()
    }

    /// Number of channels.
    pub fn channel_count(&self) -> usize {
        self.channels.len()
    }

    /// Per-channel `(columns issued, row hits at issue)` cumulative
    /// counters, in channel order — the telemetry sampler's bandwidth
    /// and row-locality gauges. Neither counter is cleared by
    /// [`MemoryController::reset_stats`] (the event loop's drain logic
    /// watches `columns_issued` monotonically); samplers difference
    /// against a base snapshot instead.
    pub fn channel_activity(&self, out: &mut Vec<(u64, u64)>) {
        out.clear();
        out.extend(
            self.channels
                .iter()
                .map(|c| (c.columns_issued(), c.row_hits_issued())),
        );
    }

    /// The earliest cycle an in-flight read completes on any channel.
    pub fn next_read_completion(&self) -> Option<MemCycle> {
        self.channels
            .iter()
            .filter_map(|c| c.next_read_completion())
            .min()
    }

    fn record_completion(&mut self, c: &Completion) {
        let record = |r: &mut Ratio| {
            if c.row_hit {
                r.add_hit();
            } else {
                r.add_miss();
            }
        };
        if c.txn.is_write {
            self.stats.writes_completed += 1;
            record(&mut self.stats.write_row_hits);
        } else {
            self.stats.reads_completed += 1;
            self.stats.total_read_latency += c.latency();
            if c.txn.class == TrafficClass::Demand {
                self.stats.demand_reads_completed += 1;
                self.stats.total_demand_read_latency += c.latency();
                record(&mut self.stats.demand_read_row_hits);
            } else {
                record(&mut self.stats.spec_read_row_hits);
            }
            record(&mut self.stats.read_row_hits);
        }
        if c.row_conflict {
            self.stats.row_conflicts += 1;
        }
    }

    /// Aggregated statistics so far.
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    /// Zeroes statistics and energy counters without disturbing bank
    /// state or queued transactions (warmup/measurement boundary).
    pub fn reset_stats(&mut self) {
        self.stats = DramStats::default();
        for ch in &mut self.channels {
            ch.reset_energy();
        }
    }

    /// Merged energy counters across channels.
    pub fn energy(&self) -> DramEnergyCounters {
        let mut e = DramEnergyCounters::default();
        for ch in &self.channels {
            e.merge(ch.energy());
        }
        e
    }

    /// Total timing-audit violations (0 when auditing is disabled).
    pub fn audit_errors(&self) -> usize {
        self.channels
            .iter()
            .filter_map(|c| c.auditor())
            .map(|a| a.errors().len())
            .sum()
    }

    /// Sum of queued transactions across channels (for backpressure
    /// introspection and tests).
    pub fn queued(&self) -> usize {
        self.channels
            .iter()
            .map(|c| c.read_queue_len() + c.write_queue_len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bump_types::BlockAddr;

    fn read(i: u64) -> Transaction {
        Transaction::read(BlockAddr::from_index(i), TrafficClass::Demand, 0)
    }

    fn write(i: u64) -> Transaction {
        Transaction::write(BlockAddr::from_index(i), TrafficClass::DemandWriteback, 0)
    }

    fn run(mc: &mut MemoryController, from: MemCycle, to: MemCycle) -> Vec<Completion> {
        let mut done = Vec::new();
        for now in from..to {
            mc.tick(now, &mut done);
        }
        done
    }

    #[test]
    fn sequential_region_reads_mostly_hit_with_region_interleaving() {
        let mut cfg = DramConfig::paper_open_row();
        cfg.audit = true;
        let mut mc = MemoryController::new(cfg);
        for i in 0..16u64 {
            mc.try_enqueue(read(i), 0).unwrap();
        }
        let done = run(&mut mc, 0, 2_000);
        assert_eq!(done.len(), 16);
        // One activation, fifteen row hits.
        assert_eq!(mc.stats().read_row_hits.hits, 15);
        assert_eq!(mc.energy().activations, 1);
        assert_eq!(mc.audit_errors(), 0);
    }

    #[test]
    fn sequential_region_reads_spread_with_block_interleaving() {
        let mut cfg = DramConfig::paper_close_row();
        cfg.audit = true;
        let mut mc = MemoryController::new(cfg);
        for i in 0..16u64 {
            mc.try_enqueue(read(i), 0).unwrap();
        }
        let done = run(&mut mc, 0, 2_000);
        assert_eq!(done.len(), 16);
        // Blocks fan out over many banks: many activations.
        assert!(
            mc.energy().activations >= 8,
            "expected bank-parallel activations, got {}",
            mc.energy().activations
        );
        assert_eq!(mc.audit_errors(), 0);
    }

    #[test]
    fn block_interleaving_is_faster_for_scattered_parallel_reads() {
        // 16 consecutive blocks: close/block exploits bank parallelism,
        // open/region serializes on one bank but hits the row buffer.
        let mut close = MemoryController::new(DramConfig::paper_close_row());
        let mut open = MemoryController::new(DramConfig::paper_open_row());
        for i in 0..16u64 {
            close.try_enqueue(read(i), 0).unwrap();
            open.try_enqueue(read(i), 0).unwrap();
        }
        let dc = run(&mut close, 0, 4_000);
        let do_ = run(&mut open, 0, 4_000);
        let end_close = dc.iter().map(|c| c.done_at).max().unwrap();
        let end_open = do_.iter().map(|c| c.done_at).max().unwrap();
        assert!(
            end_close < end_open,
            "block interleaving should finish first ({end_close} vs {end_open})"
        );
    }

    #[test]
    fn writes_complete_and_count_in_stats() {
        let mut mc = MemoryController::new(DramConfig::paper_open_row());
        for i in 0..8u64 {
            mc.try_enqueue(write(i), 0).unwrap();
        }
        let _ = run(&mut mc, 0, 3_000);
        assert_eq!(mc.stats().writes_completed, 8);
        assert_eq!(mc.energy().writes, 8);
    }

    #[test]
    fn queue_full_surfaces_as_error() {
        let mut mc = MemoryController::new(DramConfig::paper_open_row());
        let mut rejected = 0;
        // All to one channel: region-interleaved consecutive regions
        // alternate channels, so step by 2 regions.
        for i in 0..200u64 {
            let t = read(i * 32);
            if mc.try_enqueue(t, 0).is_err() {
                rejected += 1;
            }
        }
        assert!(rejected > 0, "backpressure must kick in");
    }

    #[test]
    fn stats_row_hit_ratio_combines_reads_and_writes() {
        let mut mc = MemoryController::new(DramConfig::paper_open_row());
        for i in 0..4u64 {
            mc.try_enqueue(read(i), 0).unwrap();
            mc.try_enqueue(write(i + 16), 0).unwrap();
        }
        let _ = run(&mut mc, 0, 3_000);
        let r = mc.stats().row_hit_ratio();
        assert_eq!(r.total, 8);
    }

    #[test]
    fn long_audited_run_stays_legal_under_both_configs() {
        for cfg in [DramConfig::paper_close_row(), DramConfig::paper_open_row()] {
            let mut cfg = cfg;
            cfg.audit = true;
            let mut mc = MemoryController::new(cfg);
            let mut state = 0xDEADBEEFu64;
            let mut done = Vec::new();
            for now in 0..20_000u64 {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                if state.is_multiple_of(4) {
                    let t = if state.is_multiple_of(8) {
                        write(state % 1_000_000)
                    } else {
                        read(state % 1_000_000)
                    };
                    let _ = mc.try_enqueue(t, now);
                }
                mc.tick(now, &mut done);
            }
            assert_eq!(mc.audit_errors(), 0, "config {:?}", mc.config().policy);
            assert!(done.len() > 1000);
        }
    }
}
