//! Cycle-level DDR3 main-memory model for the BuMP reproduction.
//!
//! This crate is the stand-in for the paper's DRAMSim2 substrate. It
//! models channels, ranks, and banks with the full DDR3-1600 timing set
//! from Table II of the paper (tCAS/tRCD/tRP/tRAS/tRC/tWR/tWTR/tRTP/
//! tRRD/tFAW plus burst occupancy and refresh), FR-FCFS scheduling with
//! open- and close-row policies, block- and region-level address
//! interleaving, a drained write queue, and per-event energy counters
//! that feed the Micron-derived energy model (Table III).
//!
//! The controller runs in the memory-bus clock domain; the system
//! simulator converts CPU cycles with [`bump_types::DramTiming`].
//!
//! # Example
//!
//! ```
//! use bump_dram::{DramConfig, MemoryController, Transaction};
//! use bump_types::{BlockAddr, TrafficClass};
//!
//! let mut mc = MemoryController::new(DramConfig::paper_open_row());
//! let txn = Transaction::read(BlockAddr::from_index(42), TrafficClass::Demand, 0);
//! mc.try_enqueue(txn, 0).expect("queue empty at reset");
//! let mut done = Vec::new();
//! for cycle in 0..200 {
//!     mc.tick(cycle, &mut done);
//! }
//! assert_eq!(done.len(), 1, "single read completes within 200 mem cycles");
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod audit;
mod bank;
mod channel;
mod controller;
mod energy;
mod mapping;
mod transaction;

pub use audit::{AuditError, CommandRecord, TimingAuditor};
pub use bank::{Bank, BankState, CommandKind};
pub use channel::{Channel, RowPolicy, WriteQueueConfig};
pub use controller::{DramConfig, DramStats, EnqueueError, MemoryController};
pub use energy::{DramEnergyBreakdown, DramEnergyCounters, DramEnergyParams};
pub use mapping::{AddressMapper, DramCoord};
pub use transaction::{Completion, Transaction, TransactionId};
