//! One memory channel: per-bank state, transaction queues, and the
//! FR-FCFS command scheduler.
//!
//! Every memory-bus cycle the channel may issue at most one command
//! (command-bus serialization). FR-FCFS priority order:
//!
//! 1. refresh management (precharges for a due refresh, then REF),
//! 2. the oldest *ready* column command to an already-open row
//!    ("first-ready": row hits bypass older row misses),
//! 3. an ACT for the oldest transaction whose bank is precharged,
//! 4. a PRE for the oldest transaction whose bank holds the wrong row —
//!    but never while another queued transaction still hits the open row.
//!
//! Reads are prioritized over writes; writes buffer in a write queue
//! that drains when it fills past a high watermark (or opportunistically
//! when no reads are pending), following the scheme of the Virtual Write
//! Queue paper the baseline compares against.

use crate::audit::TimingAuditor;
use crate::bank::{Bank, CommandKind, RankTimer};
use crate::energy::DramEnergyCounters;
use crate::mapping::DramCoord;
use crate::transaction::{Completion, Transaction, TransactionId};
use bump_types::{DramGeometry, DramTiming, MemCycle};
use std::collections::VecDeque;

/// Write-queue capacity and drain watermarks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WriteQueueConfig {
    /// Maximum buffered writes per channel.
    pub capacity: usize,
    /// Enter drain mode at or above this occupancy.
    pub drain_high: usize,
    /// Leave drain mode at or below this occupancy.
    pub drain_low: usize,
}

impl Default for WriteQueueConfig {
    fn default() -> Self {
        WriteQueueConfig {
            capacity: 64,
            drain_high: 48,
            drain_low: 16,
        }
    }
}

/// Row-buffer management policy (paper §V.A).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum RowPolicy {
    /// Keep rows open after a column access (FR-FCFS open-row).
    #[default]
    Open,
    /// Auto-precharge after the last pending access to the row
    /// (FR-FCFS close-row).
    Close,
}

#[derive(Clone, Debug)]
struct Queued {
    id: TransactionId,
    txn: Transaction,
    coord: DramCoord,
    enqueued_at: MemCycle,
    caused_activation: bool,
    caused_conflict: bool,
}

#[derive(Clone, Copy, Debug)]
struct InFlight {
    id: TransactionId,
    txn: Transaction,
    enqueued_at: MemCycle,
    data_end: MemCycle,
    row_hit: bool,
    row_conflict: bool,
}

/// One memory channel with its ranks, banks, queues, and scheduler.
#[derive(Debug)]
pub struct Channel {
    timing: DramTiming,
    policy: RowPolicy,
    geom: DramGeometry,
    wq_config: WriteQueueConfig,
    read_capacity: usize,
    banks: Vec<Bank>,
    ranks: Vec<RankTimer>,
    read_queue: VecDeque<Queued>,
    write_queue: VecDeque<Queued>,
    in_flight: Vec<InFlight>,
    write_drain: bool,
    data_bus_free_at: MemCycle,
    last_burst_was_write: bool,
    energy: DramEnergyCounters,
    auditor: Option<TimingAuditor>,
    /// Memoized event horizon for [`Channel::tick_event`]: every tick at
    /// a cycle strictly below it is a provable no-op (only background
    /// energy accounting). `None` means "unknown — take the full tick".
    horizon: Option<MemCycle>,
    /// Commands issued so far (ACT/column/PRE/REF), bumped whenever a
    /// tick consumes its command slot. Lets `tick_event` detect an
    /// active tick without recomputing the horizon.
    commands_issued: u64,
    /// Column commands issued so far. Columns are the only commands
    /// that pop a queue entry, i.e. the only events that can open room
    /// for a backpressured transaction — the event loop watches this to
    /// know when an enqueue retry could succeed.
    columns_issued: u64,
    /// Columns that hit the open row at issue time. Together with
    /// `columns_issued` this gives the telemetry sampler a per-channel
    /// bandwidth/row-locality gauge without walking completions.
    row_hits_issued: u64,
}

impl Channel {
    /// Creates a channel of `geom.ranks_per_channel` ranks. Refreshes
    /// are staggered across ranks starting from `refresh_phase`.
    pub fn new(
        geom: DramGeometry,
        timing: DramTiming,
        policy: RowPolicy,
        wq_config: WriteQueueConfig,
        read_capacity: usize,
        refresh_phase: MemCycle,
        audit: bool,
    ) -> Self {
        let ranks = (0..geom.ranks_per_channel)
            .map(|r| {
                RankTimer::new(
                    refresh_phase
                        + u64::from(r) * timing.refi() / u64::from(geom.ranks_per_channel),
                )
            })
            .collect();
        Channel {
            timing,
            policy,
            geom,
            wq_config,
            read_capacity,
            banks: vec![Bank::new(); (geom.ranks_per_channel * geom.banks_per_rank) as usize],
            ranks,
            read_queue: VecDeque::new(),
            write_queue: VecDeque::new(),
            in_flight: Vec::new(),
            write_drain: false,
            data_bus_free_at: 0,
            last_burst_was_write: false,
            energy: DramEnergyCounters::default(),
            auditor: audit.then(TimingAuditor::new),
            horizon: None,
            commands_issued: 0,
            columns_issued: 0,
            row_hits_issued: 0,
        }
    }

    fn bank_index(&self, coord: DramCoord) -> usize {
        (coord.rank * self.geom.banks_per_rank + coord.bank) as usize
    }

    /// Whether the queue for `is_write` traffic has room.
    pub fn has_room(&self, is_write: bool) -> bool {
        if is_write {
            self.write_queue.len() < self.wq_config.capacity
        } else {
            self.read_queue.len() < self.read_capacity
        }
    }

    /// Current read-queue occupancy.
    pub fn read_queue_len(&self) -> usize {
        self.read_queue.len()
    }

    /// Current write-queue occupancy.
    pub fn write_queue_len(&self) -> usize {
        self.write_queue.len()
    }

    /// Accumulated energy event counters.
    pub fn energy(&self) -> &DramEnergyCounters {
        &self.energy
    }

    /// Zeroes the energy counters (warmup/measurement boundary).
    pub fn reset_energy(&mut self) {
        self.energy = DramEnergyCounters::default();
    }

    /// The auditor's verdicts (only present when auditing is enabled).
    pub fn auditor(&self) -> Option<&TimingAuditor> {
        self.auditor.as_ref()
    }

    /// Promotes a queued speculative read of `block` to demand priority
    /// (a demand access merged into its MSHR). Returns whether a queued
    /// transaction was found.
    pub fn promote_to_demand(&mut self, block: bump_types::BlockAddr) -> bool {
        self.horizon = None;
        if let Some(q) = self
            .read_queue
            .iter_mut()
            .find(|q| q.txn.block == block && q.txn.class.is_speculative())
        {
            q.txn.class = bump_types::TrafficClass::Demand;
            true
        } else {
            false
        }
    }

    /// Enqueues a transaction already mapped to `coord`.
    ///
    /// Returns `false` (and drops nothing) when the target queue is full.
    /// A write to a block with a queued write coalesces into the older
    /// entry; a read that hits a queued write is served by forwarding at
    /// the next tick without touching DRAM.
    pub fn enqueue(
        &mut self,
        id: TransactionId,
        txn: Transaction,
        coord: DramCoord,
        now: MemCycle,
    ) -> bool {
        self.horizon = None;
        if txn.is_write {
            if let Some(q) = self
                .write_queue
                .iter_mut()
                .find(|q| q.txn.block == txn.block)
            {
                // Coalesce: the newer data replaces the queued write.
                q.txn = txn;
                return true;
            }
            if self.write_queue.len() >= self.wq_config.capacity {
                return false;
            }
            self.write_queue.push_back(Queued {
                id,
                txn,
                coord,
                enqueued_at: now,
                caused_activation: false,
                caused_conflict: false,
            });
        } else {
            if self.read_queue.len() >= self.read_capacity {
                return false;
            }
            if self.write_queue.iter().any(|q| q.txn.block == txn.block) {
                // Forward from the write queue: complete without DRAM.
                self.in_flight.push(InFlight {
                    id,
                    txn,
                    enqueued_at: now,
                    data_end: now + 1,
                    row_hit: true,
                    row_conflict: false,
                });
                return true;
            }
            self.read_queue.push_back(Queued {
                id,
                txn,
                coord,
                enqueued_at: now,
                caused_activation: false,
                caused_conflict: false,
            });
        }
        true
    }

    /// Advances the channel by one memory cycle, appending finished
    /// transactions to `completions`.
    pub fn tick(&mut self, now: MemCycle, completions: &mut Vec<Completion>) {
        self.retire_in_flight(now, completions);
        self.account_background(now);
        self.update_drain_mode();
        if self.service_refresh(now) {
            return; // the command slot was spent on refresh management
        }
        self.schedule(now);
    }

    /// Event-driven tick: identical semantics to [`Channel::tick`], but
    /// ticks strictly below the memoized [`Channel::next_event_at`]
    /// horizon take a fast path that only performs the per-cycle
    /// background-energy accounting (provably the full tick's only
    /// effect there). The horizon is recomputed after every full tick
    /// and invalidated by [`Channel::enqueue`] /
    /// [`Channel::promote_to_demand`].
    pub fn tick_event(&mut self, now: MemCycle, completions: &mut Vec<Completion>) {
        if let Some(h) = self.horizon {
            if now < h {
                self.account_background(now);
                return;
            }
        }
        let commands_before = self.commands_issued;
        let retired_before = completions.len();
        self.tick(now, completions);
        self.horizon =
            if self.commands_issued != commands_before || completions.len() != retired_before {
                // The channel is hot — a command or completion landed this
                // cycle, so more activity next cycle is likely. Skip the
                // horizon scan; the next full tick re-evaluates anyway.
                Some(now + 1)
            } else {
                Some(self.next_event_at(now + 1))
            };
    }

    /// The earliest memory cycle `T >= now` at which ticking this
    /// channel could do anything beyond background-energy accounting: a
    /// transaction completes, a command becomes legal to issue, a
    /// refresh falls due or finishes, or the write-drain mode flips.
    ///
    /// This is an *exact lower bound*: every tick in `now..T` is a
    /// no-op (the channel state is frozen there, so the monotone timing
    /// predicates cannot flip before their thresholds), while the tick
    /// at `T` may — but need not — act. Returning a too-early horizon
    /// only costs a wasted tick; the event engine's equivalence to the
    /// cycle-accurate oracle does not depend on tightness.
    pub fn next_event_at(&self, now: MemCycle) -> MemCycle {
        // A pending drain-mode flip mutates state on the very next tick.
        if self.drain_mode_would_flip() {
            return now;
        }
        let mut t = MemCycle::MAX;
        for f in &self.in_flight {
            t = t.min(f.data_end);
        }
        for r in &self.ranks {
            t = t.min(match r.refresh_until() {
                Some(until) => until,
                None => r.refresh_due(),
            });
        }
        let is_write = self.write_drain;
        let hit_banks = self.open_row_hit_banks();
        for q in self.active_queue() {
            t = t.min(self.earliest_possible_issue(q, is_write, hit_banks));
        }
        t.max(now)
    }

    /// [`Channel::next_event_at`], but served from the horizon memoized
    /// by [`Channel::tick_event`] when it is still valid (the channel
    /// state is frozen between full ticks, and every mutation —
    /// enqueue, promotion — invalidates the memo).
    pub fn next_event_cached(&self, now: MemCycle) -> MemCycle {
        match self.horizon {
            Some(h) => h,
            None => self.next_event_at(now),
        }
    }

    /// One pass over the active queue marking the banks whose open row
    /// still has a pending hit — the rows the "first-ready" guarantee
    /// forbids closing. Banks beyond the 64-bit mask (never the paper
    /// geometry) fall back to [`Channel::pending_open_row_hit`].
    fn open_row_hit_banks(&self) -> u64 {
        let mut mask = 0u64;
        for q in self.active_queue() {
            let idx = self.bank_index(q.coord);
            if idx < 64 && self.banks[idx].open_row() == Some(q.coord.row) {
                mask |= 1 << idx;
            }
        }
        mask
    }

    /// Whether any active-queue transaction still hits bank `idx`'s
    /// open row, using the precomputed mask where it applies.
    fn pending_open_row_hit(&self, idx: usize, mask: u64) -> bool {
        if idx < 64 {
            return mask & (1 << idx) != 0;
        }
        let open = self.banks[idx].open_row();
        self.active_queue()
            .iter()
            .any(|o| self.bank_index(o.coord) == idx && Some(o.coord.row) == open)
    }

    /// Whether the next tick's [`Channel::update_drain_mode`] would
    /// change the drain flag, given the current (frozen) queue lengths.
    fn drain_mode_would_flip(&self) -> bool {
        if self.write_drain {
            self.write_queue.len() <= self.wq_config.drain_low
        } else {
            self.write_queue.len() >= self.wq_config.drain_high
                || (self.read_queue.is_empty() && !self.write_queue.is_empty())
        }
    }

    /// A lower bound on the cycle at which `q` could trigger any
    /// command (column, ACT, or conflict PRE), assuming the channel
    /// state stays frozen. Rank refresh windows are bounded separately
    /// by the caller via the per-rank refresh thresholds.
    fn earliest_possible_issue(
        &self,
        q: &Queued,
        is_write: bool,
        open_row_hit_banks: u64,
    ) -> MemCycle {
        let idx = self.bank_index(q.coord);
        let bank = &self.banks[idx];
        let rank = &self.ranks[q.coord.rank as usize];
        match bank.open_row() {
            Some(row) if row == q.coord.row => {
                let mut t = bank.earliest_column();
                if !is_write {
                    t = t.max(rank.earliest_read_column());
                }
                let data_latency = if is_write {
                    self.timing.cwl()
                } else {
                    self.timing.t_cas
                };
                let mut free = self.data_bus_free_at;
                if self.last_burst_was_write != is_write {
                    free += self.timing.turnaround();
                }
                t.max(free.saturating_sub(data_latency))
            }
            None => bank
                .earliest_activate()
                .max(rank.earliest_activate(&self.timing)),
            Some(_) => {
                // Conflict: a PRE can issue at earliest_pre, but never
                // while a pending hit on the open row exists — that
                // blocker only clears via another command (an event in
                // its own right), so this transaction contributes none.
                if self.pending_open_row_hit(idx, open_row_hit_banks) {
                    MemCycle::MAX
                } else {
                    bank.earliest_precharge()
                }
            }
        }
    }

    /// Applies the state changes of `cycles` consecutive no-op ticks in
    /// O(ranks): per-rank background-energy accounting with the frozen
    /// `open_banks` classification. The caller must have established —
    /// via [`Channel::next_event_at`] — that every skipped tick is a
    /// no-op.
    pub fn skip_idle_cycles(&mut self, cycles: u64) {
        for rank in &self.ranks {
            if rank.open_banks > 0 {
                self.energy.active_rank_cycles += cycles;
            } else {
                self.energy.idle_rank_cycles += cycles;
            }
        }
    }

    /// Whether this channel's only possible activity is periodic
    /// refresh: no queued or in-flight transactions, not in write-drain
    /// mode (an empty write queue in drain mode still owes a mode
    /// flip), every bank precharged, and no rank's next refresh gated
    /// on a bank timing constraint left over from pre-span activity.
    ///
    /// Under these conditions every refresh in an arbitrarily long
    /// skipped span issues exactly at `max(refresh_due, refresh_until)`
    /// (deferred only by same-cycle command-slot contention): the rank
    /// is pending at that tick, all its banks are closed, and — since a
    /// refresh leaves its banks ready exactly when its in-progress
    /// window ends — later refreshes of the span can never be blocked
    /// either. That makes [`Channel::skip_refresh_idle`] exact.
    pub fn refresh_only_idle(&self) -> bool {
        if !self.read_queue.is_empty()
            || !self.write_queue.is_empty()
            || !self.in_flight.is_empty()
            || self.write_drain
        {
            return false;
        }
        let bpr = self.geom.banks_per_rank as usize;
        for (r, rank) in self.ranks.iter().enumerate() {
            if rank.open_banks > 0 {
                return false;
            }
            let p = rank.refresh_until().unwrap_or(0).max(rank.refresh_due());
            let ready = self.banks[r * bpr..(r + 1) * bpr]
                .iter()
                .map(Bank::earliest_activate)
                .max()
                .unwrap_or(0);
            if p < ready {
                return false;
            }
        }
        true
    }

    /// Replays memory ticks `[m0, m0 + cycles)` in closed form for a
    /// channel in the [`Channel::refresh_only_idle`] regime: bulk
    /// background-energy accounting plus every refresh the span
    /// contains, issued at exactly the cycle the per-tick scheduler
    /// would have picked (first pending rank in index order, one
    /// command slot per cycle). Completed in-progress markers are left
    /// for the next full tick's `finish_refresh`, exactly as the
    /// memoized-horizon fast path leaves them.
    pub fn skip_refresh_idle(&mut self, m0: MemCycle, cycles: u64) {
        debug_assert!(self.refresh_only_idle());
        let m_end = m0 + cycles;
        // All ranks are fully precharged for the whole span (a refresh
        // never opens a row), so the per-tick background accounting
        // folds to one bulk add.
        self.energy.idle_rank_cycles += self.ranks.len() as u64 * cycles;
        let mut cursor = m0;
        loop {
            // Earliest tick any rank wants a refresh: its due time,
            // deferred past a still-running refresh window.
            let pending_at = |rank: &RankTimer| -> MemCycle {
                rank.refresh_until().unwrap_or(0).max(rank.refresh_due())
            };
            let t = self
                .ranks
                .iter()
                .map(pending_at)
                .min()
                .unwrap_or(MemCycle::MAX);
            let now = t.max(cursor);
            if now >= m_end {
                break;
            }
            // The per-tick scan serves the first pending rank in index
            // order.
            let r = (0..self.ranks.len())
                .find(|&r| pending_at(&self.ranks[r]) <= now)
                .expect("a rank is pending at the candidate tick");
            self.ranks[r].finish_refresh(now);
            self.commands_issued += 1;
            let done = self.ranks[r].start_refresh(now, &self.timing);
            let base = r * self.geom.banks_per_rank as usize;
            for b in base..base + self.geom.banks_per_rank as usize {
                self.banks[b].refresh_until(done);
            }
            self.energy.refreshes += 1;
            if let Some(a) = &mut self.auditor {
                a.record(now, r as u32, 0, CommandKind::Refresh, 0, &self.timing);
            }
            cursor = now + 1;
        }
        self.horizon = None;
    }

    /// Column commands issued so far (the queue-popping events).
    pub fn columns_issued(&self) -> u64 {
        self.columns_issued
    }

    /// Columns issued that hit the already-open row.
    pub fn row_hits_issued(&self) -> u64 {
        self.row_hits_issued
    }

    /// The earliest cycle an in-flight *read* finishes its data burst,
    /// if any. Drives the LLC's MSHR-full retry horizon.
    pub fn next_read_completion(&self) -> Option<MemCycle> {
        self.in_flight
            .iter()
            .filter(|f| !f.txn.is_write)
            .map(|f| f.data_end)
            .min()
    }

    fn retire_in_flight(&mut self, now: MemCycle, completions: &mut Vec<Completion>) {
        let mut i = 0;
        while i < self.in_flight.len() {
            if self.in_flight[i].data_end <= now {
                let f = self.in_flight.swap_remove(i);
                completions.push(Completion {
                    id: f.id,
                    txn: f.txn,
                    enqueued_at: f.enqueued_at,
                    done_at: f.data_end,
                    row_hit: f.row_hit,
                    row_conflict: f.row_conflict,
                });
            } else {
                i += 1;
            }
        }
        for rank in &mut self.ranks {
            rank.finish_refresh(now);
        }
    }

    fn account_background(&mut self, _now: MemCycle) {
        for rank in &self.ranks {
            if rank.open_banks > 0 {
                self.energy.active_rank_cycles += 1;
            } else {
                self.energy.idle_rank_cycles += 1;
            }
        }
    }

    fn update_drain_mode(&mut self) {
        if self.write_drain {
            if self.write_queue.len() <= self.wq_config.drain_low {
                self.write_drain = false;
            }
        } else if self.write_queue.len() >= self.wq_config.drain_high
            || (self.read_queue.is_empty() && !self.write_queue.is_empty())
        {
            self.write_drain = true;
        }
    }

    /// Handles refresh management; returns true if the command slot was
    /// consumed.
    fn service_refresh(&mut self, now: MemCycle) -> bool {
        for r in 0..self.ranks.len() {
            if !self.ranks[r].refresh_pending(now) {
                continue;
            }
            let base = r * self.geom.banks_per_rank as usize;
            let bank_range = base..base + self.geom.banks_per_rank as usize;
            // Precharge any open bank first (one command per cycle).
            for b in bank_range.clone() {
                if self.banks[b].open_row().is_some() {
                    if self.banks[b].can_precharge(now) {
                        self.issue_precharge(r, b, now);
                        return true;
                    }
                    return false; // must wait for tRAS/tWR before closing
                }
            }
            // All banks closed: issue REF once tRP has elapsed everywhere.
            if bank_range.clone().all(|b| self.banks[b].can_activate(now)) {
                self.commands_issued += 1;
                let done = self.ranks[r].start_refresh(now, &self.timing);
                for b in bank_range {
                    self.banks[b].refresh_until(done);
                }
                self.energy.refreshes += 1;
                if let Some(a) = &mut self.auditor {
                    a.record(now, r as u32, 0, CommandKind::Refresh, 0, &self.timing);
                }
                return true;
            }
            return false;
        }
        false
    }

    fn issue_precharge(&mut self, rank: usize, bank: usize, now: MemCycle) {
        debug_assert!(self.banks[bank].open_row().is_some());
        self.commands_issued += 1;
        self.banks[bank].precharge(now, &self.timing);
        self.ranks[rank].open_banks -= 1;
        if let Some(a) = &mut self.auditor {
            a.record(
                now,
                rank as u32,
                (bank % self.geom.banks_per_rank as usize) as u32,
                CommandKind::Precharge,
                0,
                &self.timing,
            );
        }
    }

    /// FR-FCFS arbitration: issue at most one command.
    fn schedule(&mut self, now: MemCycle) {
        // 1. Oldest ready column command (row hit) in the active queue.
        if let Some(pos) = self.find_ready_column(now) {
            self.issue_column(pos, now);
            return;
        }
        // 2. Oldest ACT-able transaction.
        if let Some(pos) = self.find_activatable(now) {
            self.issue_activate(pos, now);
            return;
        }
        // 3. Oldest conflicting transaction whose row can close.
        if let Some(pos) = self.find_prechargeable(now) {
            self.issue_conflict_precharge(pos, now);
        }
    }

    fn active_queue(&self) -> &VecDeque<Queued> {
        if self.write_drain {
            &self.write_queue
        } else {
            &self.read_queue
        }
    }

    /// Finds the oldest ready column command, preferring demand traffic
    /// over speculative (prefetch/bulk) traffic so streams cannot delay
    /// the critical path.
    fn find_ready_column(&self, now: MemCycle) -> Option<usize> {
        let is_write = self.write_drain;
        if !self.data_bus_available(now, is_write) {
            return None; // channel-wide gate: no column can issue
        }
        let ready = |q: &Queued| {
            let bank = &self.banks[self.bank_index(q.coord)];
            if !bank.can_column(now, q.coord.row) {
                return false;
            }
            let rank = &self.ranks[q.coord.rank as usize];
            if is_write {
                rank.can_write_col(now)
            } else {
                rank.can_read_col(now)
            }
        };
        self.first_with_demand_priority(ready)
    }

    /// The oldest active-queue transaction satisfying `pred`, giving
    /// demand traffic priority over speculative (prefetch/bulk) traffic
    /// so streams cannot delay the critical path — in one pass.
    fn first_with_demand_priority(&self, pred: impl Fn(&Queued) -> bool) -> Option<usize> {
        let mut any = None;
        for (i, q) in self.active_queue().iter().enumerate() {
            if pred(q) {
                if !q.txn.class.is_speculative() {
                    return Some(i);
                }
                if any.is_none() {
                    any = Some(i);
                }
            }
        }
        any
    }

    fn data_bus_available(&self, now: MemCycle, is_write: bool) -> bool {
        let data_start = now
            + if is_write {
                self.timing.cwl()
            } else {
                self.timing.t_cas
            };
        let mut free_at = self.data_bus_free_at;
        if self.last_burst_was_write != is_write {
            free_at += self.timing.turnaround();
        }
        data_start >= free_at
    }

    /// Finds the oldest transaction whose bank can activate, with the
    /// same demand-over-speculative priority as column commands.
    fn find_activatable(&self, now: MemCycle) -> Option<usize> {
        let can = |q: &Queued| {
            let bank = &self.banks[self.bank_index(q.coord)];
            bank.can_activate(now)
                && self.ranks[q.coord.rank as usize].can_activate(now, &self.timing)
        };
        self.first_with_demand_priority(can)
    }

    fn find_prechargeable(&self, now: MemCycle) -> Option<usize> {
        let hit_banks = self.open_row_hit_banks();
        self.active_queue().iter().position(|q| {
            let idx = self.bank_index(q.coord);
            let bank = &self.banks[idx];
            match bank.open_row() {
                Some(open) if open != q.coord.row => {
                    !self.pending_open_row_hit(idx, hit_banks) && bank.can_precharge(now)
                }
                _ => false,
            }
        })
    }

    fn issue_column(&mut self, pos: usize, now: MemCycle) {
        self.commands_issued += 1;
        self.columns_issued += 1;
        let is_write = self.write_drain;
        let q = if is_write {
            self.write_queue.remove(pos).expect("queue position valid")
        } else {
            self.read_queue.remove(pos).expect("queue position valid")
        };
        let bank_idx = self.bank_index(q.coord);
        let auto = self.policy == RowPolicy::Close && !self.row_has_other_pending(q.coord, q.id);
        let was_open = self.banks[bank_idx].open_row().is_some();
        let data_end = if is_write {
            let end = self.banks[bank_idx].write(now, &self.timing, auto);
            self.ranks[q.coord.rank as usize].record_write_burst(end, &self.timing);
            self.energy.writes += 1;
            end
        } else {
            let end = self.banks[bank_idx].read(now, &self.timing, auto);
            self.energy.reads += 1;
            end
        };
        if was_open && self.banks[bank_idx].open_row().is_none() {
            self.ranks[q.coord.rank as usize].open_banks -= 1;
        }
        self.data_bus_free_at = data_end;
        self.last_burst_was_write = is_write;
        if let Some(a) = &mut self.auditor {
            let kind = match (is_write, auto) {
                (false, false) => CommandKind::Read,
                (false, true) => CommandKind::ReadAuto,
                (true, false) => CommandKind::Write,
                (true, true) => CommandKind::WriteAuto,
            };
            a.record(
                now,
                q.coord.rank,
                q.coord.bank,
                kind,
                q.coord.row,
                &self.timing,
            );
        }
        if !q.caused_activation {
            self.row_hits_issued += 1;
        }
        self.in_flight.push(InFlight {
            id: q.id,
            txn: q.txn,
            enqueued_at: q.enqueued_at,
            data_end,
            row_hit: !q.caused_activation,
            row_conflict: q.caused_conflict,
        });
    }

    /// Whether any other queued transaction (either queue) targets the
    /// same bank and row.
    fn row_has_other_pending(&self, coord: DramCoord, id: TransactionId) -> bool {
        let same = |q: &Queued| {
            q.id != id
                && q.coord.rank == coord.rank
                && q.coord.bank == coord.bank
                && q.coord.row == coord.row
        };
        self.read_queue.iter().any(same) || self.write_queue.iter().any(same)
    }

    fn issue_activate(&mut self, pos: usize, now: MemCycle) {
        self.commands_issued += 1;
        let (coord, row) = {
            let q = &self.active_queue()[pos];
            (q.coord, q.coord.row)
        };
        let bank_idx = self.bank_index(coord);
        self.banks[bank_idx].activate(now, row, &self.timing);
        self.ranks[coord.rank as usize].record_activate(now, &self.timing);
        self.ranks[coord.rank as usize].open_banks += 1;
        self.energy.activations += 1;
        if let Some(a) = &mut self.auditor {
            a.record(
                now,
                coord.rank,
                coord.bank,
                CommandKind::Activate,
                row,
                &self.timing,
            );
        }
        // The transaction that triggered the ACT pays the row miss; every
        // other queued transaction to the same row will be a hit.
        let queue = if self.write_drain {
            &mut self.write_queue
        } else {
            &mut self.read_queue
        };
        queue[pos].caused_activation = true;
    }

    fn issue_conflict_precharge(&mut self, pos: usize, now: MemCycle) {
        let coord = self.active_queue()[pos].coord;
        let bank_idx = self.bank_index(coord);
        self.issue_precharge(coord.rank as usize, bank_idx, now);
        let queue = if self.write_drain {
            &mut self.write_queue
        } else {
            &mut self.read_queue
        };
        queue[pos].caused_conflict = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::AddressMapper;
    use bump_types::{BlockAddr, Interleaving, TrafficClass};

    fn mk_channel(policy: RowPolicy) -> (Channel, AddressMapper) {
        let geom = DramGeometry::paper();
        let mapper = AddressMapper::new(geom, Interleaving::Region);
        let ch = Channel::new(
            geom,
            bump_types::MemSpec::ddr3_1600().timing,
            policy,
            WriteQueueConfig::default(),
            64,
            1_000_000, // keep refresh out of short tests
            true,
        );
        (ch, mapper)
    }

    fn run(ch: &mut Channel, from: MemCycle, to: MemCycle) -> Vec<Completion> {
        let mut done = Vec::new();
        for now in from..to {
            ch.tick(now, &mut done);
        }
        done
    }

    fn read_txn(i: u64) -> Transaction {
        Transaction::read(BlockAddr::from_index(i), TrafficClass::Demand, 0)
    }

    #[test]
    fn single_read_latency_is_act_rcd_cas_burst() {
        let (mut ch, m) = mk_channel(RowPolicy::Open);
        let b = BlockAddr::from_index(0);
        assert!(ch.enqueue(TransactionId(1), read_txn(0), m.decode(b), 0));
        let done = run(&mut ch, 0, 100);
        assert_eq!(done.len(), 1);
        let t = bump_types::MemSpec::ddr3_1600().timing;
        // ACT at 0, RD at tRCD, data ends tCAS + tBURST later.
        assert_eq!(done[0].done_at, t.t_rcd + t.t_cas + t.t_burst);
        assert!(!done[0].row_hit);
    }

    #[test]
    fn second_read_same_row_is_row_hit() {
        let (mut ch, m) = mk_channel(RowPolicy::Open);
        // Blocks 0 and 1 share a row under region interleaving.
        ch.enqueue(
            TransactionId(1),
            read_txn(0),
            m.decode(BlockAddr::from_index(0)),
            0,
        );
        ch.enqueue(
            TransactionId(2),
            read_txn(1),
            m.decode(BlockAddr::from_index(1)),
            0,
        );
        let done = run(&mut ch, 0, 200);
        assert_eq!(done.len(), 2);
        assert!(!done[0].row_hit);
        assert!(done[1].row_hit, "same-row access must hit the row buffer");
        assert_eq!(ch.energy().activations, 1, "one activation serves both");
    }

    #[test]
    fn close_policy_precharges_between_lone_accesses() {
        let (mut ch, m) = mk_channel(RowPolicy::Close);
        ch.enqueue(
            TransactionId(1),
            read_txn(0),
            m.decode(BlockAddr::from_index(0)),
            0,
        );
        let _ = run(&mut ch, 0, 100);
        // Enqueue a second access to the same row afterwards: the row was
        // auto-precharged, so it needs a fresh activation.
        ch.enqueue(
            TransactionId(2),
            read_txn(1),
            m.decode(BlockAddr::from_index(1)),
            100,
        );
        let done = run(&mut ch, 100, 300);
        assert_eq!(done.len(), 1);
        assert!(!done[0].row_hit, "close policy must have closed the row");
        assert_eq!(ch.energy().activations, 2);
    }

    #[test]
    fn open_policy_keeps_row_across_idle_gap() {
        let (mut ch, m) = mk_channel(RowPolicy::Open);
        ch.enqueue(
            TransactionId(1),
            read_txn(0),
            m.decode(BlockAddr::from_index(0)),
            0,
        );
        let _ = run(&mut ch, 0, 100);
        ch.enqueue(
            TransactionId(2),
            read_txn(1),
            m.decode(BlockAddr::from_index(1)),
            100,
        );
        let done = run(&mut ch, 100, 200);
        assert_eq!(done.len(), 1);
        assert!(done[0].row_hit, "open policy keeps the row across the gap");
    }

    #[test]
    fn row_conflict_forces_precharge_and_miss() {
        let (mut ch, m) = mk_channel(RowPolicy::Open);
        // Two blocks in the same bank but different rows: under region
        // interleaving, stepping by one full row's worth of regions in
        // the same bank. Find two such blocks by scanning.
        let c0 = m.decode(BlockAddr::from_index(0));
        let mut other = None;
        for i in 1..1_000_000u64 {
            let c = m.decode(BlockAddr::from_index(i));
            if c.channel == c0.channel && c.rank == c0.rank && c.bank == c0.bank && c.row != c0.row
            {
                other = Some((BlockAddr::from_index(i), c));
                break;
            }
        }
        let (b1, c1) = other.expect("bank revisited with another row");
        ch.enqueue(TransactionId(1), read_txn(0), c0, 0);
        let _ = run(&mut ch, 0, 100);
        ch.enqueue(
            TransactionId(2),
            Transaction::read(b1, TrafficClass::Demand, 0),
            c1,
            100,
        );
        let done = run(&mut ch, 100, 400);
        assert_eq!(done.len(), 1);
        assert!(!done[0].row_hit);
        assert!(done[0].row_conflict, "must record the conflict precharge");
    }

    #[test]
    fn writes_wait_for_drain_mode_and_reads_bypass() {
        let (mut ch, m) = mk_channel(RowPolicy::Open);
        let wb = Transaction::write(BlockAddr::from_index(64), TrafficClass::DemandWriteback, 0);
        ch.enqueue(TransactionId(1), wb, m.decode(BlockAddr::from_index(64)), 0);
        ch.enqueue(
            TransactionId(2),
            read_txn(0),
            m.decode(BlockAddr::from_index(0)),
            0,
        );
        let done = run(&mut ch, 0, 400);
        assert_eq!(done.len(), 2);
        // The read (id 2) finishes first even though the write arrived first.
        assert_eq!(done[0].id, TransactionId(2));
        assert_eq!(done[1].id, TransactionId(1));
    }

    #[test]
    fn read_forwards_from_queued_write() {
        let (mut ch, m) = mk_channel(RowPolicy::Open);
        let block = BlockAddr::from_index(64);
        // Park enough other writes to keep the drain from starting
        // before the read arrives.
        ch.enqueue(
            TransactionId(1),
            Transaction::write(block, TrafficClass::DemandWriteback, 0),
            m.decode(block),
            0,
        );
        ch.enqueue(
            TransactionId(2),
            read_txn(block.index()),
            m.decode(block),
            0,
        );
        let mut done = Vec::new();
        ch.tick(0, &mut done);
        ch.tick(1, &mut done);
        let read = done.iter().find(|c| c.id == TransactionId(2));
        assert!(read.is_some(), "forwarded read completes immediately");
        assert_eq!(ch.energy().reads, 0, "forwarding must not touch DRAM");
    }

    #[test]
    fn write_coalescing_keeps_one_queue_entry() {
        let (mut ch, m) = mk_channel(RowPolicy::Open);
        let block = BlockAddr::from_index(64);
        let wb = Transaction::write(block, TrafficClass::DemandWriteback, 0);
        ch.enqueue(TransactionId(1), wb, m.decode(block), 0);
        ch.enqueue(TransactionId(2), wb, m.decode(block), 0);
        assert_eq!(ch.write_queue_len(), 1);
    }

    #[test]
    fn refresh_eventually_issues_and_blocks_traffic() {
        let geom = DramGeometry::paper();
        let m = AddressMapper::new(geom, Interleaving::Region);
        let mut ch = Channel::new(
            geom,
            bump_types::MemSpec::ddr3_1600().timing,
            RowPolicy::Open,
            WriteQueueConfig::default(),
            64,
            10, // refresh almost immediately
            true,
        );
        let _ = run(&mut ch, 0, 200);
        assert!(ch.energy().refreshes >= 1, "refresh must fire");
        // After refresh completes, reads still work.
        ch.enqueue(
            TransactionId(1),
            read_txn(0),
            m.decode(BlockAddr::from_index(0)),
            200,
        );
        let done = run(&mut ch, 200, 400);
        assert_eq!(done.len(), 1);
        assert!(ch.auditor().unwrap().errors().is_empty());
    }

    #[test]
    fn audited_random_mix_has_no_timing_violations() {
        let (mut ch, m) = mk_channel(RowPolicy::Open);
        let mut id = 0u64;
        let mut done = Vec::new();
        let mut state = 0x12345678u64;
        for now in 0..5_000u64 {
            // xorshift for a deterministic pseudo-random mix
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            if now % 3 == 0 {
                let block = BlockAddr::from_index(state % 100_000);
                id += 1;
                let txn = if state.is_multiple_of(5) {
                    Transaction::write(block, TrafficClass::DemandWriteback, 0)
                } else {
                    Transaction::read(block, TrafficClass::Demand, 0)
                };
                let _ = ch.enqueue(TransactionId(id), txn, m.decode(block), now);
            }
            ch.tick(now, &mut done);
        }
        assert!(
            ch.auditor().unwrap().errors().is_empty(),
            "timing violations: {:?}",
            ch.auditor().unwrap().errors()
        );
        assert!(done.len() > 100, "mix must make progress");
    }

    #[test]
    fn queue_full_rejects_enqueue() {
        let (mut ch, m) = mk_channel(RowPolicy::Open);
        let mut accepted = 0;
        for i in 0..200u64 {
            let b = BlockAddr::from_index(i * 1024);
            if ch.enqueue(TransactionId(i), read_txn(b.index()), m.decode(b), 0) {
                accepted += 1;
            }
        }
        assert_eq!(accepted, 64, "read queue capacity is 64");
    }
}
