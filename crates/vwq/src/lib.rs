//! Virtual Write Queue (VWQ) — the eager-writeback baseline.
//!
//! Stuecheli et al. (ISCA 2010) coordinate the LLC and the memory
//! controller: when a dirty block is evicted from the LLC, the
//! mechanism eagerly schedules writebacks for a small number of
//! *adjacent* cache blocks that are dirty in the LLC, so their DRAM
//! writes coalesce into the same open row. The BuMP paper configures it
//! to look up "three adjacent cache blocks upon a dirty LLC eviction"
//! (§V.A) and observes that this exploits writeback locality but not
//! read locality (§II.C), raising the row-buffer hit ratio to ~36%.
//!
//! The engine is pure policy: it observes dirty evictions and emits
//! candidate blocks; the system probes the LLC (which charges the
//! lookup traffic) and issues the DRAM writes.
//!
//! # Example
//!
//! ```
//! use bump_vwq::VirtualWriteQueue;
//! use bump_types::BlockAddr;
//!
//! let mut vwq = VirtualWriteQueue::paper();
//! let mut out = Vec::new();
//! vwq.on_dirty_eviction(BlockAddr::from_index(10), &mut out);
//! let idx: Vec<u64> = out.iter().map(|b| b.index()).collect();
//! assert_eq!(idx, vec![11, 12, 13]);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use bump_types::BlockAddr;

/// Configuration of the eager writeback engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VwqConfig {
    /// How many adjacent blocks to probe per dirty eviction (paper: 3).
    pub lookahead: u32,
    /// Probe blocks after the evicted one (`true`) and/or before it.
    /// The paper probes a short run of adjacent blocks; we default to
    /// the forward direction, which matches streaming writebacks.
    pub forward: bool,
    /// Also probe the same count backwards.
    pub backward: bool,
}

impl Default for VwqConfig {
    fn default() -> Self {
        VwqConfig {
            lookahead: 3,
            forward: true,
            backward: false,
        }
    }
}

/// VWQ statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct VwqStats {
    /// Dirty evictions observed.
    pub dirty_evictions_seen: u64,
    /// Candidate blocks emitted for probing.
    pub candidates_emitted: u64,
}

/// The eager-writeback policy engine.
#[derive(Clone, Debug)]
pub struct VirtualWriteQueue {
    config: VwqConfig,
    stats: VwqStats,
}

impl VirtualWriteQueue {
    /// Creates the engine.
    pub fn new(config: VwqConfig) -> Self {
        VirtualWriteQueue {
            config,
            stats: VwqStats::default(),
        }
    }

    /// The paper's configuration: three adjacent blocks, forward.
    pub fn paper() -> Self {
        VirtualWriteQueue::new(VwqConfig::default())
    }

    /// The configuration in force.
    pub fn config(&self) -> VwqConfig {
        self.config
    }

    /// Statistics so far.
    pub fn stats(&self) -> &VwqStats {
        &self.stats
    }

    /// Observes a dirty LLC eviction of `block` and appends the
    /// adjacent blocks whose dirtiness the system should probe.
    pub fn on_dirty_eviction(&mut self, block: BlockAddr, out: &mut Vec<BlockAddr>) {
        self.stats.dirty_evictions_seen += 1;
        if self.config.forward {
            for k in 1..=self.config.lookahead {
                out.push(block.offset_by(i64::from(k)));
                self.stats.candidates_emitted += 1;
            }
        }
        if self.config.backward {
            for k in 1..=self.config.lookahead {
                if block.index() >= u64::from(k) {
                    out.push(block.offset_by(-i64::from(k)));
                    self.stats.candidates_emitted += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_candidates_follow_the_eviction() {
        let mut v = VirtualWriteQueue::paper();
        let mut out = Vec::new();
        v.on_dirty_eviction(BlockAddr::from_index(100), &mut out);
        let idx: Vec<u64> = out.iter().map(|b| b.index()).collect();
        assert_eq!(idx, vec![101, 102, 103]);
        assert_eq!(v.stats().dirty_evictions_seen, 1);
        assert_eq!(v.stats().candidates_emitted, 3);
    }

    #[test]
    fn bidirectional_config_probes_both_sides() {
        let mut v = VirtualWriteQueue::new(VwqConfig {
            lookahead: 2,
            forward: true,
            backward: true,
        });
        let mut out = Vec::new();
        v.on_dirty_eviction(BlockAddr::from_index(10), &mut out);
        let idx: Vec<u64> = out.iter().map(|b| b.index()).collect();
        assert_eq!(idx, vec![11, 12, 9, 8]);
    }

    #[test]
    fn backward_probes_clamp_at_address_zero() {
        let mut v = VirtualWriteQueue::new(VwqConfig {
            lookahead: 3,
            forward: false,
            backward: true,
        });
        let mut out = Vec::new();
        v.on_dirty_eviction(BlockAddr::from_index(1), &mut out);
        let idx: Vec<u64> = out.iter().map(|b| b.index()).collect();
        assert_eq!(idx, vec![0], "only one block exists below index 1");
    }
}
