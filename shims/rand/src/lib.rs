//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this repository has no access to
//! crates.io, so this tiny in-tree crate provides exactly the API
//! surface the workspace uses (`SmallRng::seed_from_u64`,
//! `Rng::gen_range` over integer/float ranges, `Rng::gen_bool`) with
//! deterministic, reasonable-quality generators. It is **not** a
//! general-purpose RNG library: streams are deterministic per seed and
//! stable across platforms, which is exactly what the workload
//! generators need, but the statistical guarantees of the real `rand`
//! crate are not claimed.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — the same
//! construction the real `SmallRng` uses on 64-bit targets.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seeding interface (the `seed_from_u64` subset).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types that can be drawn uniformly from a range by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from `self` using `rng`.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

fn uniform_below(rng: &mut dyn RngCore, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Lemire's multiply-shift; the slight bias is irrelevant at the
    // span sizes used here and keeps the draw branch-free.
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

fn unit_f64(rng: &mut dyn RngCore) -> f64 {
    // 53 random mantissa bits in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (start as i128 + uniform_below(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f64(rng) * (self.end - self.start)
    }
}

/// High-level drawing interface, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value uniformly from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p}");
        unit_f64(self) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(1u32..=2);
            assert!((1..=2).contains(&w));
            let f = rng.gen_range(0.0..2.5);
            assert!((0.0..2.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "{hits}");
    }
}
