//! Offline readiness-polling shim: one [`Poller`] API over the OS
//! readiness queue — **epoll** on Linux/Android, **kqueue** on the
//! BSDs and macOS — plus a cross-thread [`Waker`].
//!
//! This workspace builds with no registry access (`shims/README.md`),
//! so the usual `mio` dependency is replaced by this hand-rolled
//! equivalent: the handful of syscalls are declared `extern "C"`
//! against the libc every Rust binary already links, and the sockets
//! themselves stay ordinary `std::net` types put into non-blocking
//! mode — the shim only multiplexes *readiness*, it never owns I/O.
//!
//! Semantics are deliberately the simple ones:
//!
//! * **Level-triggered.** A socket that is still readable/writable is
//!   reported again on the next [`Poller::wait`]; users don't have to
//!   drain to `WouldBlock` on every event (though the serve tier
//!   does).
//! * **One token per fd.** The `u64` token passed at registration
//!   comes back verbatim in each [`Event`]; the caller maps tokens to
//!   connections.
//! * **Interest is absolute.** [`Poller::modify`] replaces the
//!   registered interest set; there is no incremental arm/disarm.
//!
//! The [`Waker`] is a non-blocking socketpair whose read end is
//! registered like any connection: any thread can [`Waker::wake`] the
//! poll loop, and the loop [`Waker::drain`]s coalesced wakeups.

#![warn(missing_docs)]
#![cfg(unix)]

use std::io::{Read as _, Write as _};
use std::os::unix::io::{AsRawFd as _, RawFd};
use std::os::unix::net::UnixStream;
use std::time::Duration;

/// Which readiness classes a registration listens for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interest {
    readable: bool,
    writable: bool,
}

impl Interest {
    /// Readable-only interest.
    pub const READABLE: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Writable-only interest.
    pub const WRITABLE: Interest = Interest {
        readable: false,
        writable: true,
    };
    /// Both classes.
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };

    /// Whether read readiness is requested.
    pub fn is_readable(self) -> bool {
        self.readable
    }

    /// Whether write readiness is requested.
    pub fn is_writable(self) -> bool {
        self.writable
    }
}

/// One readiness report from [`Poller::wait`].
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// The token the fd was registered under.
    pub token: u64,
    /// The fd is readable (or has a pending EOF/error to read).
    pub readable: bool,
    /// The fd is writable.
    pub writable: bool,
    /// The peer hung up or the fd errored; a subsequent read/write
    /// surfaces the exact `io::Error` (or EOF).
    pub hangup: bool,
}

/// The OS readiness queue: epoll or kqueue behind one API.
#[derive(Debug)]
pub struct Poller {
    queue: RawFd,
}

// The queue fd is only ever *used* by the poll loop thread, but the
// Poller travels into the serving thread at spawn time and `Waker`
// handles are shared freely.
unsafe impl Send for Poller {}
unsafe impl Sync for Poller {}

impl Drop for Poller {
    fn drop(&mut self) {
        unsafe {
            sys::close(self.queue);
        }
    }
}

/// Cross-thread wakeup for a [`Poller::wait`] loop: a non-blocking
/// socketpair whose read end is registered under a caller-chosen
/// token. Multiple [`wake`](Waker::wake)s coalesce into one readable
/// event; the loop calls [`drain`](Waker::drain) when it sees the
/// token.
#[derive(Debug)]
pub struct Waker {
    tx: UnixStream,
    rx: UnixStream,
}

impl Waker {
    /// Builds the socketpair and registers its read end with `poller`
    /// under `token`.
    pub fn new(poller: &Poller, token: u64) -> std::io::Result<Waker> {
        let (tx, rx) = UnixStream::pair()?;
        tx.set_nonblocking(true)?;
        rx.set_nonblocking(true)?;
        poller.add(rx.as_raw_fd(), token, Interest::READABLE)?;
        Ok(Waker { tx, rx })
    }

    /// Makes the poll loop's next (or current) `wait` return. Callable
    /// from any thread; a full pipe means a wakeup is already pending,
    /// which is exactly the desired state.
    pub fn wake(&self) {
        let _ = (&self.tx).write(&[1]);
    }

    /// Consumes every pending wakeup byte (poll-loop side).
    pub fn drain(&self) {
        let mut buf = [0u8; 64];
        while matches!((&self.rx).read(&mut buf), Ok(n) if n > 0) {}
    }
}

#[cfg(any(target_os = "linux", target_os = "android"))]
mod sys {
    //! Raw epoll bindings. `epoll_event` is packed on x86-64 (a Linux
    //! ABI quirk kept for 32/64-bit compatibility) and naturally
    //! aligned elsewhere.

    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    pub struct RawEvent {
        pub events: u32,
        pub data: u64,
    }

    pub const EPOLL_CLOEXEC: i32 = 0o2000000;
    pub const EPOLL_CTL_ADD: i32 = 1;
    pub const EPOLL_CTL_DEL: i32 = 2;
    pub const EPOLL_CTL_MOD: i32 = 3;
    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;

    extern "C" {
        pub fn epoll_create1(flags: i32) -> i32;
        pub fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut RawEvent) -> i32;
        pub fn epoll_wait(epfd: i32, events: *mut RawEvent, maxevents: i32, timeout: i32) -> i32;
        pub fn close(fd: i32) -> i32;
    }
}

#[cfg(any(target_os = "linux", target_os = "android"))]
impl Poller {
    /// A fresh, empty readiness queue.
    pub fn new() -> std::io::Result<Poller> {
        let queue = unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) };
        if queue < 0 {
            return Err(std::io::Error::last_os_error());
        }
        Ok(Poller { queue })
    }

    fn ctl(&self, op: i32, fd: RawFd, token: u64, interest: Interest) -> std::io::Result<()> {
        let mut events = sys::EPOLLRDHUP;
        if interest.is_readable() {
            events |= sys::EPOLLIN;
        }
        if interest.is_writable() {
            events |= sys::EPOLLOUT;
        }
        let mut ev = sys::RawEvent {
            events,
            data: token,
        };
        let rc = unsafe { sys::epoll_ctl(self.queue, op, fd, &mut ev) };
        if rc < 0 {
            return Err(std::io::Error::last_os_error());
        }
        Ok(())
    }

    /// Registers `fd` under `token` with the given interest.
    pub fn add(&self, fd: RawFd, token: u64, interest: Interest) -> std::io::Result<()> {
        self.ctl(sys::EPOLL_CTL_ADD, fd, token, interest)
    }

    /// Replaces the interest set of a registered fd.
    pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> std::io::Result<()> {
        self.ctl(sys::EPOLL_CTL_MOD, fd, token, interest)
    }

    /// Removes a registration (idempotent enough for teardown: an
    /// already-closed fd reports an error that callers may ignore).
    pub fn delete(&self, fd: RawFd) -> std::io::Result<()> {
        let mut ev = sys::RawEvent { events: 0, data: 0 };
        let rc = unsafe { sys::epoll_ctl(self.queue, sys::EPOLL_CTL_DEL, fd, &mut ev) };
        if rc < 0 {
            return Err(std::io::Error::last_os_error());
        }
        Ok(())
    }

    /// Blocks until at least one registered fd is ready (or `timeout`
    /// elapses — `None` waits forever), appending reports to `events`
    /// after clearing it. Returns the number of reports.
    pub fn wait(
        &self,
        events: &mut Vec<Event>,
        timeout: Option<Duration>,
    ) -> std::io::Result<usize> {
        events.clear();
        let timeout_ms: i32 = match timeout {
            None => -1,
            Some(t) => t.as_millis().min(i32::MAX as u128) as i32,
        };
        let mut raw = [sys::RawEvent { events: 0, data: 0 }; 256];
        let n = loop {
            let rc = unsafe {
                sys::epoll_wait(self.queue, raw.as_mut_ptr(), raw.len() as i32, timeout_ms)
            };
            if rc >= 0 {
                break rc as usize;
            }
            let err = std::io::Error::last_os_error();
            if err.kind() != std::io::ErrorKind::Interrupted {
                return Err(err);
            }
        };
        for ev in &raw[..n] {
            // Copy out of the (possibly packed) struct before use.
            let bits = ev.events;
            let token = ev.data;
            events.push(Event {
                token,
                readable: bits & (sys::EPOLLIN | sys::EPOLLHUP | sys::EPOLLRDHUP) != 0,
                writable: bits & sys::EPOLLOUT != 0,
                // RDHUP (peer shut down only its write half) is NOT a
                // hangup: the peer may still be reading, so it surfaces
                // as a readable EOF and the connection keeps streaming.
                hangup: bits & (sys::EPOLLERR | sys::EPOLLHUP) != 0,
            });
        }
        Ok(n)
    }
}

#[cfg(any(
    target_os = "macos",
    target_os = "ios",
    target_os = "freebsd",
    target_os = "netbsd",
    target_os = "openbsd",
    target_os = "dragonfly"
))]
mod sys {
    //! Raw kqueue bindings (the classic BSD layout shared by macOS and
    //! the BSDs on 64-bit targets).

    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct RawEvent {
        pub ident: usize,
        pub filter: i16,
        pub flags: u16,
        pub fflags: u32,
        pub data: isize,
        pub udata: *mut std::ffi::c_void,
    }

    #[repr(C)]
    pub struct Timespec {
        pub tv_sec: i64,
        pub tv_nsec: i64,
    }

    pub const EVFILT_READ: i16 = -1;
    pub const EVFILT_WRITE: i16 = -2;
    pub const EV_ADD: u16 = 0x0001;
    pub const EV_DELETE: u16 = 0x0002;
    pub const EV_EOF: u16 = 0x8000;
    pub const EV_ERROR: u16 = 0x4000;
    pub const ENOENT: i32 = 2;

    extern "C" {
        pub fn kqueue() -> i32;
        pub fn kevent(
            kq: i32,
            changelist: *const RawEvent,
            nchanges: i32,
            eventlist: *mut RawEvent,
            nevents: i32,
            timeout: *const Timespec,
        ) -> i32;
        pub fn close(fd: i32) -> i32;
    }
}

#[cfg(any(
    target_os = "macos",
    target_os = "ios",
    target_os = "freebsd",
    target_os = "netbsd",
    target_os = "openbsd",
    target_os = "dragonfly"
))]
impl Poller {
    /// A fresh, empty readiness queue.
    pub fn new() -> std::io::Result<Poller> {
        let queue = unsafe { sys::kqueue() };
        if queue < 0 {
            return Err(std::io::Error::last_os_error());
        }
        Ok(Poller { queue })
    }

    /// Arms or disarms one kqueue filter; a disarm of a filter that
    /// was never armed (ENOENT) is the desired end state, not an
    /// error.
    fn filter(&self, fd: RawFd, token: u64, filter: i16, arm: bool) -> std::io::Result<()> {
        let change = sys::RawEvent {
            ident: fd as usize,
            filter,
            flags: if arm { sys::EV_ADD } else { sys::EV_DELETE },
            fflags: 0,
            data: 0,
            udata: token as *mut std::ffi::c_void,
        };
        let rc = unsafe {
            sys::kevent(
                self.queue,
                &change,
                1,
                std::ptr::null_mut(),
                0,
                std::ptr::null(),
            )
        };
        if rc < 0 {
            let err = std::io::Error::last_os_error();
            if !(!arm && err.raw_os_error() == Some(sys::ENOENT)) {
                return Err(err);
            }
        }
        Ok(())
    }

    /// Registers `fd` under `token` with the given interest.
    pub fn add(&self, fd: RawFd, token: u64, interest: Interest) -> std::io::Result<()> {
        self.modify(fd, token, interest)
    }

    /// Replaces the interest set of a registered fd (kqueue interest
    /// is per-filter, so this arms/disarms each filter absolutely).
    pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> std::io::Result<()> {
        self.filter(fd, token, sys::EVFILT_READ, interest.is_readable())?;
        self.filter(fd, token, sys::EVFILT_WRITE, interest.is_writable())
    }

    /// Removes a registration.
    pub fn delete(&self, fd: RawFd) -> std::io::Result<()> {
        self.filter(fd, 0, sys::EVFILT_READ, false)?;
        self.filter(fd, 0, sys::EVFILT_WRITE, false)
    }

    /// Blocks until at least one registered fd is ready (or `timeout`
    /// elapses — `None` waits forever), appending reports to `events`
    /// after clearing it. Returns the number of reports.
    pub fn wait(
        &self,
        events: &mut Vec<Event>,
        timeout: Option<Duration>,
    ) -> std::io::Result<usize> {
        events.clear();
        let ts = timeout.map(|t| sys::Timespec {
            tv_sec: t.as_secs().min(i64::MAX as u64) as i64,
            tv_nsec: i64::from(t.subsec_nanos()),
        });
        let ts_ptr = ts
            .as_ref()
            .map_or(std::ptr::null(), |t| t as *const sys::Timespec);
        let mut raw = [sys::RawEvent {
            ident: 0,
            filter: 0,
            flags: 0,
            fflags: 0,
            data: 0,
            udata: std::ptr::null_mut(),
        }; 256];
        let n = loop {
            let rc = unsafe {
                sys::kevent(
                    self.queue,
                    std::ptr::null(),
                    0,
                    raw.as_mut_ptr(),
                    raw.len() as i32,
                    ts_ptr,
                )
            };
            if rc >= 0 {
                break rc as usize;
            }
            let err = std::io::Error::last_os_error();
            if err.kind() != std::io::ErrorKind::Interrupted {
                return Err(err);
            }
        };
        for ev in &raw[..n] {
            if ev.flags & sys::EV_ERROR != 0 {
                continue;
            }
            events.push(Event {
                token: ev.udata as u64,
                readable: ev.filter == sys::EVFILT_READ,
                writable: ev.filter == sys::EVFILT_WRITE,
                // EV_EOF on the read filter is a half-close (peer may
                // still be reading) — only a write-side EOF means the
                // connection is truly gone.
                hangup: ev.filter == sys::EVFILT_WRITE && ev.flags & sys::EV_EOF != 0,
            });
        }
        Ok(events.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let client = TcpStream::connect(addr).expect("connect");
        let (server, _) = listener.accept().expect("accept");
        client.set_nonblocking(true).expect("nonblocking");
        server.set_nonblocking(true).expect("nonblocking");
        (client, server)
    }

    /// Waits until an event for `token` arrives (events for other
    /// registrations may interleave), failing after ~2s.
    fn wait_for(poller: &Poller, token: u64) -> Event {
        let mut events = Vec::new();
        for _ in 0..40 {
            poller
                .wait(&mut events, Some(Duration::from_millis(50)))
                .expect("wait");
            if let Some(ev) = events.iter().find(|e| e.token == token) {
                return *ev;
            }
        }
        panic!("no event for token {token} within 2s");
    }

    #[test]
    fn fresh_connection_reports_writable_not_readable() {
        let poller = Poller::new().expect("poller");
        let (client, _server) = pair();
        poller
            .add(client.as_raw_fd(), 7, Interest::BOTH)
            .expect("add");
        let ev = wait_for(&poller, 7);
        assert!(ev.writable, "an empty socket buffer is writable");
        assert!(!ev.readable, "nothing has been sent yet");
    }

    #[test]
    fn peer_write_makes_the_socket_readable_level_triggered() {
        let poller = Poller::new().expect("poller");
        let (client, mut server) = pair();
        poller
            .add(client.as_raw_fd(), 3, Interest::READABLE)
            .expect("add");
        server.write_all(b"hello\n").expect("peer write");
        let ev = wait_for(&poller, 3);
        assert!(ev.readable);
        // Level-triggered: not having read the bytes, the next wait
        // reports the same readiness again.
        let again = wait_for(&poller, 3);
        assert!(again.readable);
    }

    #[test]
    fn modify_replaces_interest_and_delete_silences() {
        let poller = Poller::new().expect("poller");
        let (client, mut server) = pair();
        poller
            .add(client.as_raw_fd(), 5, Interest::WRITABLE)
            .expect("add");
        server.write_all(b"x").expect("peer write");
        let ev = wait_for(&poller, 5);
        assert!(ev.writable);
        // Down to read-only interest: writable stops being reported.
        poller
            .modify(client.as_raw_fd(), 5, Interest::READABLE)
            .expect("modify");
        let ev = wait_for(&poller, 5);
        assert!(ev.readable && !ev.writable);
        poller.delete(client.as_raw_fd()).expect("delete");
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_millis(100)))
            .expect("wait");
        assert!(
            events.iter().all(|e| e.token != 5),
            "deleted fds report nothing"
        );
    }

    #[test]
    fn peer_close_reports_hangup_or_readable_eof() {
        let poller = Poller::new().expect("poller");
        let (client, server) = pair();
        poller
            .add(client.as_raw_fd(), 9, Interest::READABLE)
            .expect("add");
        drop(server);
        let ev = wait_for(&poller, 9);
        assert!(
            ev.readable || ev.hangup,
            "a closed peer must surface as readable EOF or hangup: {ev:?}"
        );
    }

    #[test]
    fn waker_wakes_across_threads_and_drains() {
        let poller = Poller::new().expect("poller");
        let waker = std::sync::Arc::new(Waker::new(&poller, 42).expect("waker"));
        let from_thread = std::sync::Arc::clone(&waker);
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            from_thread.wake();
            from_thread.wake(); // coalesces
        });
        let ev = wait_for(&poller, 42);
        assert!(ev.readable);
        // Join before draining: the second wake() must have landed by
        // now, so the drain below provably consumes both (draining
        // first would race the in-flight second wake and leave it
        // pending).
        handle.join().expect("waker thread");
        waker.drain();
        // Drained: no further wake pending.
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_millis(100)))
            .expect("wait");
        assert!(events.iter().all(|e| e.token != 42), "drain consumed it");
    }
}
