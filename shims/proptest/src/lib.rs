//! Offline stand-in for the `proptest` crate.
//!
//! The build environment for this repository has no access to
//! crates.io, so this in-tree crate implements the subset of the
//! proptest API the workspace's property tests use: the `proptest!`
//! macro with per-test strategies, range/tuple/`any`/`prop_map`/
//! `prop_oneof!`/collection strategies, `prop_assert*!`, and
//! `ProptestConfig::with_cases`.
//!
//! Semantics differ from real proptest in two deliberate ways:
//!
//! * **No shrinking.** A failing case panics with the sampled inputs
//!   unshrunk (the panic message from `prop_assert*!` still names the
//!   failing values where the test formats them).
//! * **Deterministic cases.** Every test derives its RNG stream from
//!   the test's module path and the case index, so runs are exactly
//!   reproducible — there is no persistence file and no OS entropy.

#![warn(missing_docs)]

/// Test-runner configuration and the deterministic RNG.
pub mod test_runner {
    /// Configuration for a `proptest!` block (the `with_cases` subset).
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases each test runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic RNG: xoshiro256++ seeded from the test name and
    /// case index.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl TestRng {
        /// Builds the RNG for one `(test, case)` pair.
        pub fn deterministic(test_name: &str, case: u32) -> Self {
            // FNV-1a over the test name, folded with the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            let mut sm = h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            TestRng { s }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// Uniform draw in `[0, span)`; `span` must be nonzero.
        pub fn below(&mut self, span: u64) -> u64 {
            debug_assert!(span > 0);
            ((u128::from(self.next_u64()) * u128::from(span)) >> 64) as u64
        }
    }
}

/// Strategies: composable random-value generators.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A generator of random values for one `proptest!` parameter.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps the produced value through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "cannot sample empty range");
                    let span = (end as i128 - start as i128) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    (start as i128 + rng.below(span + 1) as i128) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Strategy produced by [`Strategy::prop_map`].
    #[derive(Clone, Copy, Debug)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A 0)
        (A 0, B 1)
        (A 0, B 1, C 2)
        (A 0, B 1, C 2, D 3)
        (A 0, B 1, C 2, D 3, E 4)
    }

    /// Boxes a strategy for use in a heterogeneous [`Union`].
    pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }

    /// Uniform choice between strategies (the `prop_oneof!` backend).
    pub struct Union<T> {
        arms: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> std::fmt::Debug for Union<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "Union({} arms)", self.arms.len())
        }
    }

    impl<T> Union<T> {
        /// A union over `arms`; sampling picks one arm uniformly.
        pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].sample(rng)
        }
    }

    /// A strategy producing a fixed value (the `Just` combinator).
    #[derive(Clone, Copy, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Strategy over the full domain of `T` (see [`any`]).
    #[derive(Clone, Copy, Debug)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies (`prop::collection::*`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::HashSet;
    use std::hash::Hash;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with length drawn from a range.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// A vector whose length is drawn from `len` and whose elements are
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Strategy for `HashSet<S::Value>` with size drawn from a range.
    #[derive(Clone, Debug)]
    pub struct HashSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A hash set whose target size is drawn from `size`. The element
    /// domain must be large enough to reach the minimum size; sampling
    /// retries duplicates a bounded number of times.
    pub fn hash_set<S>(element: S, size: Range<usize>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        assert!(size.start < size.end, "empty size range");
        HashSetStrategy { element, size }
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        type Value = HashSet<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let target = self.size.start + rng.below(span) as usize;
            let mut out = HashSet::with_capacity(target);
            let mut attempts = 0usize;
            while out.len() < target && attempts < 64 * target.max(1) {
                out.insert(self.element.sample(rng));
                attempts += 1;
            }
            assert!(
                out.len() >= self.size.start,
                "hash_set strategy could not reach minimum size {} (got {})",
                self.size.start,
                out.len()
            );
            out
        }
    }
}

/// The prelude: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// The `proptest!` macro: wraps `fn name(arg in strategy, ...) { .. }`
/// items into `#[test]` functions that run many sampled cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{
            cfg = (<$crate::test_runner::ProptestConfig as ::std::default::Default>::default());
            $($rest)*
        }
    };
}

/// Internal: expands each `fn` item inside `proptest!`.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident ( $($params:tt)* ) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $crate::__proptest_bindings!{ __rng; $($params)* }
                $body
            }
        }
        $crate::__proptest_items!{ cfg = ($cfg); $($rest)* }
    };
}

/// Internal: expands `arg in strategy` parameter bindings.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bindings {
    ($rng:ident;) => {};
    ($rng:ident; $arg:ident in $strat:expr) => {
        let $arg = $crate::strategy::Strategy::sample(&($strat), &mut $rng);
    };
    ($rng:ident; $arg:ident in $strat:expr, $($rest:tt)*) => {
        let $arg = $crate::strategy::Strategy::sample(&($strat), &mut $rng);
        $crate::__proptest_bindings!{ $rng; $($rest)* }
    };
}

/// `prop_assert!`: asserts, panicking with the formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `prop_assert_eq!`: equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// `prop_assert_ne!`: inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// `prop_oneof!`: uniform choice between the listed strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($arm)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Clone, Debug, PartialEq)]
    enum Pick {
        A(u8),
        B(bool),
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Ranges stay in bounds.
        #[test]
        fn range_bounds(x in 3u64..17, y in 1u32..=4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((1..=4).contains(&y));
        }

        /// Tuples, maps, unions, and collections compose.
        #[test]
        fn combinators(
            v in prop::collection::vec((0u8..5, any::<bool>()), 1..20),
            p in prop_oneof![
                (0u8..10).prop_map(Pick::A),
                any::<bool>().prop_map(Pick::B),
            ],
            s in prop::collection::hash_set(0u64..100, 1..32),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            match p {
                Pick::A(a) => prop_assert!(a < 10),
                Pick::B(_) => {}
            }
            prop_assert!(!s.is_empty() && s.len() < 32);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::strategy::Strategy;
        let mut a = crate::test_runner::TestRng::deterministic("t", 3);
        let mut b = crate::test_runner::TestRng::deterministic("t", 3);
        assert_eq!((0u64..1000).sample(&mut a), (0u64..1000).sample(&mut b));
    }
}
