//! Offline criterion-lite bench harness.
//!
//! Implements exactly the `criterion` API surface the benches in
//! `crates/bench/benches/` use — [`black_box`], [`Criterion`],
//! `benchmark_group`/`bench_function`/`sample_size`/`throughput`/
//! `finish`, and the [`criterion_group!`]/[`criterion_main!`] macros
//! (both the list and the `name/config/targets` forms) — on top of a
//! simple measurement loop: a wall-clock warmup sizes a per-sample
//! batch, then N samples are timed and reported as min/median/mean per
//! iteration. A group [`Throughput`] declaration additionally reports
//! the sustained rate (bytes/sec or elements/sec) at the median.
//!
//! Like the real crate under `harness = false`, the binary only runs
//! the full measurement when cargo passes `--bench` (what `cargo
//! bench` does); otherwise — e.g. under `cargo test`, which builds and
//! runs bench targets in test mode — every benchmark executes exactly
//! once as a smoke check. A positional argument filters benchmarks by
//! substring, as with the real crate.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Set when a `--baseline` comparison finds a regression (or cannot
/// run at all); [`criterion_main!`] turns it into a non-zero exit.
static REGRESSED: AtomicBool = AtomicBool::new(false);

/// True if any group's baseline comparison failed. Checked by the
/// [`criterion_main!`]-generated `main` after all groups have run.
pub fn regression_detected() -> bool {
    REGRESSED.load(Ordering::SeqCst)
}

fn flag_regression() {
    REGRESSED.store(true, Ordering::SeqCst);
}

/// Target wall-clock spent warming each benchmark.
const WARMUP: Duration = Duration::from_millis(100);
/// Target wall-clock per timed sample (batches iterations up to this).
const SAMPLE_TARGET: Duration = Duration::from_millis(20);

/// The bench-harness entry point: run mode, sample count, and filter.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    /// Full measurement (`--bench`) vs one-shot smoke (test mode).
    measure: bool,
    /// Substring filter over `group/function` ids.
    filter: Option<String>,
    /// `--save-baseline <name>`: merge this run's medians into the
    /// named baseline file after the group finishes.
    save_baseline: Option<String>,
    /// `--baseline <name>`: compare this run's medians against the
    /// named baseline and fail the process on regression.
    compare_baseline: Option<String>,
    /// `--bench-threshold <pct>`: slowdown tolerated before a
    /// comparison counts as a regression (percent over baseline).
    threshold_pct: f64,
    /// Measured `(id, median_ns)` pairs, collected for the baseline
    /// machinery.
    results: Vec<(String, f64)>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 30,
            measure: false,
            filter: None,
            save_baseline: None,
            compare_baseline: None,
            threshold_pct: 15.0,
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark (builder form,
    /// used by `criterion_group!`'s `config = ...` clause).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Applies the process arguments (`--bench` enables measurement; a
    /// positional argument filters benchmark ids; `--save-baseline` /
    /// `--baseline` / `--bench-threshold` drive the regression gate).
    /// Called by [`criterion_group!`]-generated code.
    pub fn configure_from_args(mut self) -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut filter = None;
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--bench" | "--measure" => self.measure = true,
                "--test" => self.measure = false,
                "--save-baseline" => {
                    i += 1;
                    self.save_baseline = args.get(i).cloned();
                }
                "--baseline" => {
                    i += 1;
                    self.compare_baseline = args.get(i).cloned();
                }
                "--bench-threshold" => {
                    i += 1;
                    if let Some(pct) = args.get(i).and_then(|s| s.parse::<f64>().ok()) {
                        self.threshold_pct = pct;
                    }
                }
                s if !s.starts_with('-') => filter = Some(s.to_string()),
                _ => {}
            }
            i += 1;
        }
        self.filter = filter;
        self
    }

    /// Runs the baseline save/compare requested on the command line
    /// against the medians collected so far. Called by
    /// [`criterion_group!`]-generated code after the group's targets;
    /// a no-op outside measurement mode (test-mode medians are zeros)
    /// and when neither baseline flag was given.
    pub fn final_summary(&mut self) {
        if !self.measure {
            return;
        }
        let dir = baseline_dir();
        if let Some(name) = self.compare_baseline.clone() {
            match compare_baseline_at(&dir, &name, &self.results, self.threshold_pct) {
                Ok(lines) => {
                    let mut regressed = false;
                    for line in &lines {
                        println!("{line}");
                        regressed |= line.contains("REGRESSION");
                    }
                    if regressed {
                        flag_regression();
                    }
                }
                Err(e) => {
                    eprintln!("baseline '{name}': {e}");
                    flag_regression();
                }
            }
        }
        if let Some(name) = self.save_baseline.clone() {
            match save_baseline_to(&dir, &name, &self.results) {
                Ok(path) => println!("baseline '{name}' saved to {}", path.display()),
                Err(e) => eprintln!("baseline '{name}': save failed: {e}"),
            }
        }
        self.results.clear();
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
            throughput: None,
        }
    }
}

/// The amount of work one benchmark iteration processes, for
/// throughput reporting (mirrors the real crate's enum).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// One iteration moves this many bytes.
    Bytes(u64),
    /// One iteration processes this many elements.
    Elements(u64),
}

/// A named group of benchmarks sharing a sample-size override.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    /// Declares the per-iteration work of this group's benchmarks;
    /// measured reports gain a `thrpt:` line (rate at the median, with
    /// the min/mean-derived bounds).
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark. `f` receives a [`Bencher`] and calls
    /// [`Bencher::iter`] with the code under test.
    pub fn bench_function(&mut self, id: impl Into<String>, mut f: impl FnMut(&mut Bencher)) {
        let id = format!("{}/{}", self.name, id.into());
        if let Some(filter) = &self.criterion.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            measure: self.criterion.measure,
            samples: self.sample_size.unwrap_or(self.criterion.sample_size),
            report: None,
        };
        f(&mut bencher);
        match bencher.report {
            Some(r) if self.criterion.measure => {
                self.criterion.results.push((id.clone(), r.median_ns));
                println!(
                    "{id}\n    time: [min {}  median {}  mean {}]  ({} samples x {} iters)",
                    fmt_ns(r.min_ns),
                    fmt_ns(r.median_ns),
                    fmt_ns(r.mean_ns),
                    r.samples,
                    r.iters_per_sample,
                );
                if let Some(throughput) = self.throughput {
                    // Fastest sample = peak rate, mean = sustained;
                    // report the spread the way criterion orders it.
                    println!(
                        "    thrpt: [peak {}  median {}  mean {}]",
                        fmt_rate(throughput, r.min_ns),
                        fmt_rate(throughput, r.median_ns),
                        fmt_rate(throughput, r.mean_ns),
                    );
                }
            }
            Some(_) => println!("{id}: ok (test mode, 1 iteration)"),
            None => println!("{id}: no iter() call"),
        }
    }

    /// Ends the group (parity with the real API; nothing to flush).
    pub fn finish(self) {}
}

#[derive(Debug, Clone, Copy)]
struct Report {
    min_ns: f64,
    median_ns: f64,
    mean_ns: f64,
    samples: usize,
    iters_per_sample: u64,
}

/// Drives one benchmark's measurement loop.
#[derive(Debug)]
pub struct Bencher {
    measure: bool,
    samples: usize,
    report: Option<Report>,
}

impl Bencher {
    /// Measures `f`: warmup sizes a batch, then `samples` batches are
    /// timed (test mode runs `f` once and skips the measurement).
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        if !self.measure {
            black_box(f());
            self.report = Some(Report {
                min_ns: 0.0,
                median_ns: 0.0,
                mean_ns: 0.0,
                samples: 0,
                iters_per_sample: 1,
            });
            return;
        }
        // Warmup: run for at least WARMUP, counting iterations.
        let start = Instant::now();
        let mut warm_iters = 0u64;
        while start.elapsed() < WARMUP || warm_iters == 0 {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = start.elapsed().as_secs_f64() / warm_iters as f64;
        let iters_per_sample =
            ((SAMPLE_TARGET.as_secs_f64() / per_iter.max(1e-9)) as u64).clamp(1, 1 << 20);
        let mut sample_ns: Vec<f64> = (0..self.samples)
            .map(|_| {
                let t = Instant::now();
                for _ in 0..iters_per_sample {
                    black_box(f());
                }
                t.elapsed().as_nanos() as f64 / iters_per_sample as f64
            })
            .collect();
        sample_ns.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
        let min_ns = sample_ns[0];
        let median_ns = if sample_ns.len() % 2 == 1 {
            sample_ns[sample_ns.len() / 2]
        } else {
            (sample_ns[sample_ns.len() / 2 - 1] + sample_ns[sample_ns.len() / 2]) / 2.0
        };
        let mean_ns = sample_ns.iter().sum::<f64>() / sample_ns.len() as f64;
        self.report = Some(Report {
            min_ns,
            median_ns,
            mean_ns,
            samples: sample_ns.len(),
            iters_per_sample,
        });
    }
}

/// Formats the rate implied by `throughput` work per `ns`-nanosecond
/// iteration (`"—"` when the iteration time is degenerate).
fn fmt_rate(throughput: Throughput, ns: f64) -> String {
    // NaN and zero/negative timings alike have no meaningful rate.
    if ns.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
        return "—".to_string();
    }
    match throughput {
        Throughput::Bytes(bytes) => {
            // Binary thresholds to match the binary units, so the
            // printed value is always >= 1.0 in its own unit.
            let per_sec = bytes as f64 / (ns * 1e-9);
            if per_sec >= (1u64 << 30) as f64 {
                format!("{:.3} GiB/s", per_sec / (1u64 << 30) as f64)
            } else if per_sec >= (1u64 << 20) as f64 {
                format!("{:.3} MiB/s", per_sec / (1u64 << 20) as f64)
            } else {
                format!("{per_sec:.1} B/s")
            }
        }
        Throughput::Elements(n) => {
            let per_sec = n as f64 / (ns * 1e-9);
            if per_sec >= 1e6 {
                format!("{:.3} Melem/s", per_sec / 1e6)
            } else if per_sec >= 1e3 {
                format!("{:.3} Kelem/s", per_sec / 1e3)
            } else {
                format!("{per_sec:.1} elem/s")
            }
        }
    }
}

/// Directory holding baseline JSON files. Defaults to the in-repo
/// `results/bench_baselines/` (relative to the invocation directory,
/// i.e. the workspace root under `cargo bench`); override with
/// `BENCH_BASELINE_DIR` for tests and CI scratch runs.
fn baseline_dir() -> PathBuf {
    std::env::var_os("BENCH_BASELINE_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results/bench_baselines"))
}

/// Writes (or merges into) `dir/name.json`: a flat JSON object mapping
/// benchmark id to median nanoseconds per iteration. Existing entries
/// for ids not re-measured this run are kept, so a filtered run only
/// refreshes the benchmarks it actually executed.
fn save_baseline_to(dir: &Path, name: &str, results: &[(String, f64)]) -> std::io::Result<PathBuf> {
    let path = dir.join(format!("{name}.json"));
    let mut entries: Vec<(String, f64)> = std::fs::read_to_string(&path)
        .ok()
        .and_then(|text| parse_baseline(&text))
        .unwrap_or_default();
    for (id, median) in results {
        match entries.iter_mut().find(|(k, _)| k == id) {
            Some((_, v)) => *v = *median,
            None => entries.push((id.clone(), *median)),
        }
    }
    entries.sort_by(|a, b| a.0.cmp(&b.0));
    let mut out = String::from("{\n");
    for (i, (id, median)) in entries.iter().enumerate() {
        let comma = if i + 1 == entries.len() { "" } else { "," };
        out.push_str(&format!("  \"{id}\": {median:.3}{comma}\n"));
    }
    out.push_str("}\n");
    std::fs::create_dir_all(dir)?;
    std::fs::write(&path, out)?;
    Ok(path)
}

/// Parses the flat `{"id": median_ns, ...}` baseline shape written by
/// [`save_baseline_to`]. Benchmark ids never contain quotes, commas,
/// or colons, so a split-based scan is exact for this schema.
fn parse_baseline(text: &str) -> Option<Vec<(String, f64)>> {
    let inner = text.trim().strip_prefix('{')?.strip_suffix('}')?;
    let mut out = Vec::new();
    for part in inner.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let (k, v) = part.split_once(':')?;
        let k = k.trim().strip_prefix('"')?.strip_suffix('"')?;
        out.push((k.to_string(), v.trim().parse().ok()?));
    }
    Some(out)
}

/// Compares `results` against `dir/name.json`. Returns one report line
/// per measured benchmark; lines containing `REGRESSION` mark medians
/// more than `threshold_pct` percent over their baseline. Errors when
/// the baseline file is missing or unparsable (a requested comparison
/// that cannot run must not pass silently).
fn compare_baseline_at(
    dir: &Path,
    name: &str,
    results: &[(String, f64)],
    threshold_pct: f64,
) -> Result<Vec<String>, String> {
    let path = dir.join(format!("{name}.json"));
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let baseline =
        parse_baseline(&text).ok_or_else(|| format!("cannot parse {}", path.display()))?;
    let mut lines = Vec::new();
    for (id, median) in results {
        match baseline.iter().find(|(k, _)| k == id) {
            Some((_, base)) if *base > 0.0 => {
                let ratio = median / base;
                let verdict = if ratio > 1.0 + threshold_pct / 100.0 {
                    "REGRESSION"
                } else if ratio < 1.0 - threshold_pct / 100.0 {
                    "improved"
                } else {
                    "ok"
                };
                lines.push(format!(
                    "{id}: {} vs baseline {} ({:+.1}%, threshold {threshold_pct:.0}%) {verdict}",
                    fmt_ns(*median),
                    fmt_ns(*base),
                    (ratio - 1.0) * 100.0,
                ));
            }
            Some(_) => lines.push(format!("{id}: baseline median is zero, skipped")),
            None => lines.push(format!("{id}: no baseline entry (new benchmark)")),
        }
    }
    Ok(lines)
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3}µs", ns / 1e3)
    } else {
        format!("{ns:.1}ns")
    }
}

/// Declares a bench group: either `criterion_group!(name, fn_a, fn_b)`
/// or the `name = ...; config = ...; targets = ...` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $( $target(&mut criterion); )+
            criterion.final_summary();
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench binary's `main`, running each group in order and
/// exiting non-zero if any group's `--baseline` comparison regressed.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            if $crate::regression_detected() {
                eprintln!("benchmark regression detected (see REGRESSION lines above)");
                std::process::exit(1);
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_mode_runs_the_closure_once() {
        let mut c = Criterion::default();
        let mut runs = 0u32;
        let mut g = c.benchmark_group("g");
        g.bench_function("f", |b| b.iter(|| runs += 1));
        g.finish();
        assert_eq!(runs, 1, "test mode is a single smoke iteration");
    }

    #[test]
    fn measurement_reports_ordered_statistics() {
        let mut b = Bencher {
            measure: true,
            samples: 5,
            report: None,
        };
        b.iter(|| std::hint::black_box(3u64.pow(7)));
        let r = b.report.expect("measured");
        assert!(r.min_ns <= r.median_ns && r.median_ns <= r.mean_ns * 2.0);
        assert_eq!(r.samples, 5);
        assert!(r.iters_per_sample >= 1);
    }

    #[test]
    fn throughput_rates_scale_with_work_and_time() {
        // 1 GiB moved in 1 second.
        let gib = Throughput::Bytes(1 << 30);
        assert_eq!(fmt_rate(gib, 1e9), "1.000 GiB/s");
        // Twice the time, half the rate; sub-GiB drops to MiB/s.
        assert_eq!(fmt_rate(gib, 2e9), "512.000 MiB/s");
        // 1000 elements in 1 ms = 1 Melem/s.
        assert_eq!(fmt_rate(Throughput::Elements(1000), 1e6), "1.000 Melem/s");
        assert_eq!(fmt_rate(Throughput::Elements(5), 1e6), "5.000 Kelem/s");
        // Degenerate timings never divide by zero.
        assert_eq!(fmt_rate(gib, 0.0), "—");
        // The builder composes with sample_size and runs in test mode.
        let mut c = Criterion::default();
        let mut runs = 0u32;
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Bytes(64)).sample_size(5);
        g.bench_function("f", |b| b.iter(|| runs += 1));
        g.finish();
        assert_eq!(runs, 1);
    }

    #[test]
    fn baseline_round_trips_and_merges() {
        let dir = std::env::temp_dir().join("microbench_baseline_roundtrip");
        let _ = std::fs::remove_dir_all(&dir);
        let first = vec![("g/a".to_string(), 100.0), ("g/b".to_string(), 200.0)];
        save_baseline_to(&dir, "main", &first).expect("save");
        // A filtered re-save refreshes only the re-measured id.
        let refresh = vec![("g/b".to_string(), 250.0)];
        save_baseline_to(&dir, "main", &refresh).expect("merge");
        let text = std::fs::read_to_string(dir.join("main.json")).expect("read");
        let parsed = parse_baseline(&text).expect("parse");
        assert_eq!(
            parsed,
            vec![("g/a".to_string(), 100.0), ("g/b".to_string(), 250.0)]
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compare_flags_regressions_beyond_threshold() {
        let dir = std::env::temp_dir().join("microbench_baseline_compare");
        let _ = std::fs::remove_dir_all(&dir);
        let base = vec![("g/a".to_string(), 100.0), ("g/b".to_string(), 100.0)];
        save_baseline_to(&dir, "main", &base).expect("save");
        let now = vec![
            ("g/a".to_string(), 110.0), // +10%: within 15%
            ("g/b".to_string(), 130.0), // +30%: regression
            ("g/new".to_string(), 5.0), // no baseline entry
        ];
        let lines = compare_baseline_at(&dir, "main", &now, 15.0).expect("compare");
        assert_eq!(lines.len(), 3);
        assert!(lines[0].ends_with("ok"), "{}", lines[0]);
        assert!(lines[1].contains("REGRESSION"), "{}", lines[1]);
        assert!(lines[2].contains("no baseline entry"), "{}", lines[2]);
        // A looser threshold lets the same slowdown pass.
        let lines = compare_baseline_at(&dir, "main", &now, 40.0).expect("compare");
        assert!(!lines[1].contains("REGRESSION"), "{}", lines[1]);
        // A missing baseline is an error, not a silent pass.
        assert!(compare_baseline_at(&dir, "absent", &now, 15.0).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn filter_skips_non_matching_benchmarks() {
        let mut c = Criterion {
            filter: Some("wanted".to_string()),
            ..Criterion::default()
        };
        let mut runs = 0u32;
        let mut g = c.benchmark_group("g");
        g.bench_function("other", |b| b.iter(|| runs += 1));
        g.bench_function("wanted_one", |b| b.iter(|| runs += 1));
        g.finish();
        assert_eq!(runs, 1, "only the matching benchmark runs");
    }
}
