//! Offline criterion-lite bench harness.
//!
//! Implements exactly the `criterion` API surface the benches in
//! `crates/bench/benches/` use — [`black_box`], [`Criterion`],
//! `benchmark_group`/`bench_function`/`sample_size`/`throughput`/
//! `finish`, and the [`criterion_group!`]/[`criterion_main!`] macros
//! (both the list and the `name/config/targets` forms) — on top of a
//! simple measurement loop: a wall-clock warmup sizes a per-sample
//! batch, then N samples are timed and reported as min/median/mean per
//! iteration. A group [`Throughput`] declaration additionally reports
//! the sustained rate (bytes/sec or elements/sec) at the median.
//!
//! Like the real crate under `harness = false`, the binary only runs
//! the full measurement when cargo passes `--bench` (what `cargo
//! bench` does); otherwise — e.g. under `cargo test`, which builds and
//! runs bench targets in test mode — every benchmark executes exactly
//! once as a smoke check. A positional argument filters benchmarks by
//! substring, as with the real crate.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall-clock spent warming each benchmark.
const WARMUP: Duration = Duration::from_millis(100);
/// Target wall-clock per timed sample (batches iterations up to this).
const SAMPLE_TARGET: Duration = Duration::from_millis(20);

/// The bench-harness entry point: run mode, sample count, and filter.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    /// Full measurement (`--bench`) vs one-shot smoke (test mode).
    measure: bool,
    /// Substring filter over `group/function` ids.
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 30,
            measure: false,
            filter: None,
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark (builder form,
    /// used by `criterion_group!`'s `config = ...` clause).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Applies the process arguments (`--bench` enables measurement; a
    /// positional argument filters benchmark ids). Called by
    /// [`criterion_group!`]-generated code.
    pub fn configure_from_args(mut self) -> Self {
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--bench" | "--measure" => self.measure = true,
                "--test" => self.measure = false,
                s if !s.starts_with('-') => filter = Some(s.to_string()),
                _ => {}
            }
        }
        self.filter = filter;
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
            throughput: None,
        }
    }
}

/// The amount of work one benchmark iteration processes, for
/// throughput reporting (mirrors the real crate's enum).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// One iteration moves this many bytes.
    Bytes(u64),
    /// One iteration processes this many elements.
    Elements(u64),
}

/// A named group of benchmarks sharing a sample-size override.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    /// Declares the per-iteration work of this group's benchmarks;
    /// measured reports gain a `thrpt:` line (rate at the median, with
    /// the min/mean-derived bounds).
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark. `f` receives a [`Bencher`] and calls
    /// [`Bencher::iter`] with the code under test.
    pub fn bench_function(&mut self, id: impl Into<String>, mut f: impl FnMut(&mut Bencher)) {
        let id = format!("{}/{}", self.name, id.into());
        if let Some(filter) = &self.criterion.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            measure: self.criterion.measure,
            samples: self.sample_size.unwrap_or(self.criterion.sample_size),
            report: None,
        };
        f(&mut bencher);
        match bencher.report {
            Some(r) if self.criterion.measure => {
                println!(
                    "{id}\n    time: [min {}  median {}  mean {}]  ({} samples x {} iters)",
                    fmt_ns(r.min_ns),
                    fmt_ns(r.median_ns),
                    fmt_ns(r.mean_ns),
                    r.samples,
                    r.iters_per_sample,
                );
                if let Some(throughput) = self.throughput {
                    // Fastest sample = peak rate, mean = sustained;
                    // report the spread the way criterion orders it.
                    println!(
                        "    thrpt: [peak {}  median {}  mean {}]",
                        fmt_rate(throughput, r.min_ns),
                        fmt_rate(throughput, r.median_ns),
                        fmt_rate(throughput, r.mean_ns),
                    );
                }
            }
            Some(_) => println!("{id}: ok (test mode, 1 iteration)"),
            None => println!("{id}: no iter() call"),
        }
    }

    /// Ends the group (parity with the real API; nothing to flush).
    pub fn finish(self) {}
}

#[derive(Debug, Clone, Copy)]
struct Report {
    min_ns: f64,
    median_ns: f64,
    mean_ns: f64,
    samples: usize,
    iters_per_sample: u64,
}

/// Drives one benchmark's measurement loop.
#[derive(Debug)]
pub struct Bencher {
    measure: bool,
    samples: usize,
    report: Option<Report>,
}

impl Bencher {
    /// Measures `f`: warmup sizes a batch, then `samples` batches are
    /// timed (test mode runs `f` once and skips the measurement).
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        if !self.measure {
            black_box(f());
            self.report = Some(Report {
                min_ns: 0.0,
                median_ns: 0.0,
                mean_ns: 0.0,
                samples: 0,
                iters_per_sample: 1,
            });
            return;
        }
        // Warmup: run for at least WARMUP, counting iterations.
        let start = Instant::now();
        let mut warm_iters = 0u64;
        while start.elapsed() < WARMUP || warm_iters == 0 {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = start.elapsed().as_secs_f64() / warm_iters as f64;
        let iters_per_sample =
            ((SAMPLE_TARGET.as_secs_f64() / per_iter.max(1e-9)) as u64).clamp(1, 1 << 20);
        let mut sample_ns: Vec<f64> = (0..self.samples)
            .map(|_| {
                let t = Instant::now();
                for _ in 0..iters_per_sample {
                    black_box(f());
                }
                t.elapsed().as_nanos() as f64 / iters_per_sample as f64
            })
            .collect();
        sample_ns.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
        let min_ns = sample_ns[0];
        let median_ns = if sample_ns.len() % 2 == 1 {
            sample_ns[sample_ns.len() / 2]
        } else {
            (sample_ns[sample_ns.len() / 2 - 1] + sample_ns[sample_ns.len() / 2]) / 2.0
        };
        let mean_ns = sample_ns.iter().sum::<f64>() / sample_ns.len() as f64;
        self.report = Some(Report {
            min_ns,
            median_ns,
            mean_ns,
            samples: sample_ns.len(),
            iters_per_sample,
        });
    }
}

/// Formats the rate implied by `throughput` work per `ns`-nanosecond
/// iteration (`"—"` when the iteration time is degenerate).
fn fmt_rate(throughput: Throughput, ns: f64) -> String {
    // NaN and zero/negative timings alike have no meaningful rate.
    if ns.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
        return "—".to_string();
    }
    match throughput {
        Throughput::Bytes(bytes) => {
            // Binary thresholds to match the binary units, so the
            // printed value is always >= 1.0 in its own unit.
            let per_sec = bytes as f64 / (ns * 1e-9);
            if per_sec >= (1u64 << 30) as f64 {
                format!("{:.3} GiB/s", per_sec / (1u64 << 30) as f64)
            } else if per_sec >= (1u64 << 20) as f64 {
                format!("{:.3} MiB/s", per_sec / (1u64 << 20) as f64)
            } else {
                format!("{per_sec:.1} B/s")
            }
        }
        Throughput::Elements(n) => {
            let per_sec = n as f64 / (ns * 1e-9);
            if per_sec >= 1e6 {
                format!("{:.3} Melem/s", per_sec / 1e6)
            } else if per_sec >= 1e3 {
                format!("{:.3} Kelem/s", per_sec / 1e3)
            } else {
                format!("{per_sec:.1} elem/s")
            }
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3}µs", ns / 1e3)
    } else {
        format!("{ns:.1}ns")
    }
}

/// Declares a bench group: either `criterion_group!(name, fn_a, fn_b)`
/// or the `name = ...; config = ...; targets = ...` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_mode_runs_the_closure_once() {
        let mut c = Criterion::default();
        let mut runs = 0u32;
        let mut g = c.benchmark_group("g");
        g.bench_function("f", |b| b.iter(|| runs += 1));
        g.finish();
        assert_eq!(runs, 1, "test mode is a single smoke iteration");
    }

    #[test]
    fn measurement_reports_ordered_statistics() {
        let mut b = Bencher {
            measure: true,
            samples: 5,
            report: None,
        };
        b.iter(|| std::hint::black_box(3u64.pow(7)));
        let r = b.report.expect("measured");
        assert!(r.min_ns <= r.median_ns && r.median_ns <= r.mean_ns * 2.0);
        assert_eq!(r.samples, 5);
        assert!(r.iters_per_sample >= 1);
    }

    #[test]
    fn throughput_rates_scale_with_work_and_time() {
        // 1 GiB moved in 1 second.
        let gib = Throughput::Bytes(1 << 30);
        assert_eq!(fmt_rate(gib, 1e9), "1.000 GiB/s");
        // Twice the time, half the rate; sub-GiB drops to MiB/s.
        assert_eq!(fmt_rate(gib, 2e9), "512.000 MiB/s");
        // 1000 elements in 1 ms = 1 Melem/s.
        assert_eq!(fmt_rate(Throughput::Elements(1000), 1e6), "1.000 Melem/s");
        assert_eq!(fmt_rate(Throughput::Elements(5), 1e6), "5.000 Kelem/s");
        // Degenerate timings never divide by zero.
        assert_eq!(fmt_rate(gib, 0.0), "—");
        // The builder composes with sample_size and runs in test mode.
        let mut c = Criterion::default();
        let mut runs = 0u32;
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Bytes(64)).sample_size(5);
        g.bench_function("f", |b| b.iter(|| runs += 1));
        g.finish();
        assert_eq!(runs, 1);
    }

    #[test]
    fn filter_skips_non_matching_benchmarks() {
        let mut c = Criterion {
            filter: Some("wanted".to_string()),
            ..Criterion::default()
        };
        let mut runs = 0u32;
        let mut g = c.benchmark_group("g");
        g.bench_function("other", |b| b.iter(|| runs += 1));
        g.bench_function("wanted_one", |b| b.iter(|| runs += 1));
        g.finish();
        assert_eq!(runs, 1, "only the matching benchmark runs");
    }
}
