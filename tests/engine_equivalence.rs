//! Differential equivalence: the event-driven engine must reproduce
//! the cycle-accurate oracle *exactly* — every preset, field for field,
//! down to the energy counters and stall-cycle accounting. This is the
//! safety harness behind the event-driven `System::run` rewrite: any
//! horizon (`next_event_at`, `next_wakeup`) that under-approximates
//! idleness shows up here as a diverging report.

use bump_sim::{
    config_for_scenario, run_experiment, run_experiment_with_config, Engine, Preset, RunOptions,
    Scenario, SimReport,
};
use bump_workloads::Workload;

fn opts(engine: Engine, seed: u64) -> RunOptions {
    RunOptions {
        cores: 2,
        warmup_instructions: 30_000,
        measure_instructions: 30_000,
        max_cycles: 3_000_000,
        seed,
        small_llc: true,
        engine,
    }
}

/// Field-for-field comparison with targeted messages for the fields
/// most likely to drift, then a full structural check: `SimReport`'s
/// `Debug` rendering is a complete value dump (including every nested
/// stat and float), so identical strings mean identical reports.
fn assert_reports_identical(oracle: &SimReport, event: &SimReport, what: &str) {
    assert_eq!(
        oracle.instructions, event.instructions,
        "{what}: instructions"
    );
    assert_eq!(oracle.cycles, event.cycles, "{what}: cycles");
    assert_eq!(
        oracle.load_stall_cycles, event.load_stall_cycles,
        "{what}: load stall cycles"
    );
    assert_eq!(
        format!("{:?}", oracle.traffic),
        format!("{:?}", event.traffic),
        "{what}: traffic breakdown"
    );
    assert_eq!(
        format!("{:?}", oracle.dram),
        format!("{:?}", event.dram),
        "{what}: DRAM stats"
    );
    assert_eq!(
        format!("{:?}", oracle.dram_energy),
        format!("{:?}", event.dram_energy),
        "{what}: DRAM energy counters"
    );
    assert_eq!(
        format!("{:?}", oracle.noc),
        format!("{:?}", event.noc),
        "{what}: NOC stats"
    );
    assert_eq!(
        format!("{:?}", oracle.memory_energy),
        format!("{:?}", event.memory_energy),
        "{what}: memory energy"
    );
    assert_eq!(
        format!("{oracle:?}"),
        format!("{event:?}"),
        "{what}: full report"
    );
}

#[test]
fn every_preset_is_report_identical_across_engines() {
    for preset in Preset::all() {
        let oracle = run_experiment(preset, Workload::WebSearch, opts(Engine::Cycle, 42));
        let event = run_experiment(preset, Workload::WebSearch, opts(Engine::Event, 42));
        assert_reports_identical(&oracle, &event, preset.name());
    }
}

#[test]
fn workload_slice_is_report_identical_across_engines() {
    // The mechanisms stress different horizons: BuMP floods bulk reads
    // (MSHR backpressure → completion-horizon retries), Full-region
    // thrashes hardest, Base-close exercises the close-row scheduler.
    for (preset, workload, seed) in [
        (Preset::Bump, Workload::DataServing, 7),
        (Preset::Bump, Workload::MediaStreaming, 1),
        (Preset::FullRegion, Workload::WebServing, 7),
        (Preset::BaseClose, Workload::OnlineAnalytics, 3),
        (Preset::SmsVwq, Workload::SoftwareTesting, 11),
    ] {
        let oracle = run_experiment(preset, workload, opts(Engine::Cycle, seed));
        let event = run_experiment(preset, workload, opts(Engine::Event, seed));
        assert_reports_identical(
            &oracle,
            &event,
            &format!("{} x {} (seed {seed})", preset.name(), workload.name()),
        );
    }
}

#[test]
fn scenario_cells_are_report_identical_across_engines() {
    // Non-default scenarios stress the horizons under foreign timing
    // sets (DDR4's 16-bank ranks and longer tRFC) and under the §VI
    // heterogeneous mix (every core running a different generator).
    let cases = [
        ("ddr4_2400", Preset::Bump, Workload::WebSearch),
        (
            "mix(websearch:dataserving)",
            Preset::Bump,
            Workload::WebSearch,
        ),
    ];
    for (scenario_name, preset, workload) in cases {
        let scenario = Scenario::from_name(scenario_name).expect("known scenario");
        let run = |engine| {
            let o = opts(engine, 42);
            run_experiment_with_config(config_for_scenario(preset, workload, o, &scenario), o)
        };
        let oracle = run(Engine::Cycle);
        let event = run(Engine::Event);
        assert_reports_identical(
            &oracle,
            &event,
            &format!("{} x {} @ {scenario_name}", preset.name(), workload.name()),
        );
    }
}

#[test]
fn event_engine_is_deterministic() {
    let a = run_experiment(Preset::Bump, Workload::WebSearch, opts(Engine::Event, 42));
    let b = run_experiment(Preset::Bump, Workload::WebSearch, opts(Engine::Event, 42));
    assert_eq!(format!("{a:?}"), format!("{b:?}"));
}
