//! End-to-end `bumpr` cluster tests: a routed job over two `bumpd`
//! backends is byte-identical to `bumpc --local`, a repeated identical
//! submission is served entirely from the router's result cache
//! (touching no backend), a backend dying mid-job fails over to the
//! survivor with correct output, a cluster with no live backends ends
//! in a strict `error` frame, and backends can be registered at
//! runtime over the wire.

use bump_serve::client;
use bump_serve::cluster::Router;
use bump_serve::daemon::Daemon;
use bump_serve::journal::Journal;
use bump_serve::proto::{Frame, SubmitBatch, SubmitSpec};
use bump_sim::{Engine, Preset, RunOptions};
use bump_workloads::Workload;
use std::io::{BufRead as _, Write as _};
use std::net::TcpListener;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

fn opts() -> RunOptions {
    RunOptions {
        cores: 2,
        warmup_instructions: 30_000,
        measure_instructions: 30_000,
        max_cycles: 3_000_000,
        seed: 42,
        small_llc: true,
        engine: Engine::Event,
    }
}

fn temp_journal(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("bumpr-e2e-{}-{name}.journal", std::process::id()))
}

/// Spawns an in-process daemon on a loopback port; returns its address.
fn start_daemon(journal: Journal) -> String {
    let daemon = Daemon::new(2, journal);
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind backend");
    let addr = listener.local_addr().expect("local addr").to_string();
    daemon.spawn(listener);
    addr
}

/// Spawns an in-process router over `backends`; returns it + address.
fn start_router(backends: Vec<String>, cache: usize) -> (Arc<Router>, String) {
    let router = Router::new(backends, cache);
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind router");
    let addr = listener.local_addr().expect("local addr").to_string();
    router.spawn(listener);
    (router, addr)
}

/// A backend that passes health checks but drops every submission
/// right after accepting it — the deterministic stand-in for a daemon
/// killed mid-job.
fn flaky_backend() -> String {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind flaky backend");
    let addr = listener.local_addr().expect("local addr").to_string();
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(stream) = stream else { return };
            std::thread::spawn(move || {
                let mut reader =
                    std::io::BufReader::new(stream.try_clone().expect("clone flaky stream"));
                let mut stream = stream;
                let mut line = String::new();
                loop {
                    line.clear();
                    match reader.read_line(&mut line) {
                        Ok(0) | Err(_) => return,
                        Ok(_) => {}
                    }
                    match Frame::parse(line.trim_end()) {
                        Ok(Frame::Ping) => {
                            let pong = Frame::Pong {
                                workers: 1,
                                results: 0,
                            };
                            if writeln!(stream, "{}", pong.encode())
                                .and_then(|()| stream.flush())
                                .is_err()
                            {
                                return;
                            }
                        }
                        Ok(Frame::Submit(batch)) => {
                            // Accept, then die mid-job.
                            let accepted = Frame::JobAccepted {
                                job: 0,
                                cells: batch.cell_count() as u64,
                                cached: 0,
                            };
                            let _ = writeln!(stream, "{}", accepted.encode());
                            let _ = stream.flush();
                            return;
                        }
                        _ => return,
                    }
                }
            });
        }
    });
    addr
}

#[test]
fn routed_jobs_are_byte_identical_and_repeat_submissions_hit_only_the_cache() {
    let journals = [temp_journal("shard-b1"), temp_journal("shard-b2")];
    for j in &journals {
        let _ = std::fs::remove_file(j);
    }
    let backends: Vec<String> = journals
        .iter()
        .map(|j| start_daemon(Journal::open(j).expect("open backend journal")))
        .collect();
    let (router, addr) = start_router(backends, 1024);

    // Two base cells × two seed replicas = 4 cells in 2 work units.
    let spec = SubmitSpec {
        seeds: 2,
        ..SubmitSpec::new(
            vec![Preset::BaseOpen, Preset::Bump],
            vec![Workload::WebSearch],
            opts(),
        )
    };
    let direct = client::local_csv(&spec, 2);

    let mut stream =
        client::connect_retry(&addr, Duration::from_secs(10)).expect("connect to router");
    let mut seen: Vec<u64> = Vec::new();
    let outcome = client::submit_with(&mut stream, &spec, &mut |frame| {
        if let Frame::CellResult(cell) = frame {
            seen.push(cell.index);
        }
    })
    .expect("routed submission");
    assert_eq!(outcome.cells.len(), 4);
    assert_eq!(outcome.cached(), 0, "cold cache serves nothing");
    assert_eq!(
        outcome.to_csv(),
        direct,
        "routed rows must be byte-identical to an in-process run"
    );
    // The router streams in stable grid order, not completion order.
    assert_eq!(seen, vec![0, 1, 2, 3]);
    let after_first = router.stats();
    assert_eq!(after_first.dispatched_cells, 4);
    assert_eq!(after_first.cache_hit_cells, 0);
    // Both backends simulated something (the units were sharded, not
    // funneled to one daemon): each journal holds at least one row.
    for j in &journals {
        let lines = std::fs::read_to_string(j).expect("backend journal exists");
        assert!(
            lines.lines().count() >= 1,
            "backend journal {} must hold sharded work",
            j.display()
        );
    }

    // The repeated identical submission is served entirely from the
    // router cache: every cell cached, zero new backend dispatches.
    let cached = client::submit(&mut stream, &spec).expect("cached submission");
    assert_eq!(cached.cached(), 4, "every cell must come from the cache");
    assert_eq!(cached.to_csv(), direct);
    let after_second = router.stats();
    assert_eq!(
        after_second.dispatched_cells, after_first.dispatched_cells,
        "a fully cached job must touch no backend"
    );
    assert_eq!(after_second.cache_hit_cells, 4);

    for j in &journals {
        let _ = std::fs::remove_file(j);
    }
}

#[test]
fn batched_submissions_run_as_one_job_on_daemon_and_router() {
    let backend = start_daemon(Journal::in_memory());
    let batch = SubmitBatch {
        jobs: vec![
            SubmitSpec::new(vec![Preset::BaseOpen], vec![Workload::WebSearch], opts()),
            SubmitSpec {
                seeds: 2,
                ..SubmitSpec::new(vec![Preset::Bump], vec![Workload::DataServing], opts())
            },
        ],
        trace: None,
        telemetry: None,
    };
    let direct = client::local_batch_csv(&batch, 2).expect("batch expands");

    // Straight to the daemon.
    let mut stream =
        client::connect_retry(&backend, Duration::from_secs(10)).expect("connect to daemon");
    let outcome = client::submit_batch(&mut stream, &batch).expect("batched submission");
    assert_eq!(outcome.cells.len(), 3);
    assert_eq!(outcome.to_csv(), direct);

    // Through a router in front of it.
    let (_router, addr) = start_router(vec![backend], 64);
    let mut stream =
        client::connect_retry(&addr, Duration::from_secs(10)).expect("connect to router");
    let routed = client::submit_batch(&mut stream, &batch).expect("routed batch");
    assert_eq!(routed.to_csv(), direct);

    // Overlapping jobs are rejected with an error frame on both paths.
    let overlap = SubmitBatch {
        jobs: vec![batch.jobs[0].clone(), batch.jobs[0].clone()],
        trace: None,
        telemetry: None,
    };
    let err = client::submit_batch(&mut stream, &overlap).expect_err("overlap must fail");
    assert!(err.contains("overlap"), "{err}");
}

#[test]
fn a_backend_dying_mid_job_fails_over_to_the_survivor() {
    let flaky = flaky_backend();
    let survivor = start_daemon(Journal::in_memory());
    let (router, addr) = start_router(vec![flaky.clone(), survivor], 64);

    // Two equal-cost units: the first shards onto the flaky backend
    // (pool order), which accepts and then drops the connection.
    let spec = SubmitSpec::new(
        vec![Preset::BaseOpen, Preset::Bump],
        vec![Workload::WebSearch],
        opts(),
    );
    let direct = client::local_csv(&spec, 2);
    let mut stream =
        client::connect_retry(&addr, Duration::from_secs(10)).expect("connect to router");
    let outcome = client::submit(&mut stream, &spec).expect("failover submission");
    assert_eq!(outcome.cells.len(), 2);
    assert_eq!(
        outcome.to_csv(),
        direct,
        "failover must not change the output bytes"
    );
    let stats = router.stats();
    assert!(stats.failovers >= 1, "the flaky backend must be failed");
    let states = router.backend_states();
    assert_eq!(
        states.iter().find(|(a, _)| *a == flaky).map(|(_, ok)| *ok),
        Some(false),
        "the flaky backend must be marked dead"
    );
}

#[test]
fn a_cluster_with_no_live_backends_errors_strictly() {
    // A pool whose only member accepts jobs and then dies: the job
    // must end in a strict error frame once no backend remains.
    let (_, addr) = start_router(vec![flaky_backend()], 64);
    let spec = SubmitSpec::new(vec![Preset::BaseOpen], vec![Workload::WebSearch], opts());
    let mut stream =
        client::connect_retry(&addr, Duration::from_secs(10)).expect("connect to router");
    let err = client::submit(&mut stream, &spec).expect_err("job must fail");
    assert!(err.contains("all backends failed"), "{err}");

    // An empty pool fails before dispatching anything.
    let (_, addr) = start_router(Vec::new(), 64);
    let mut stream =
        client::connect_retry(&addr, Duration::from_secs(10)).expect("connect to router");
    let err = client::submit(&mut stream, &spec).expect_err("empty pool must fail");
    assert!(err.contains("no live backends"), "{err}");
}

#[test]
fn backends_register_at_runtime_over_the_wire() {
    let (router, addr) = start_router(Vec::new(), 64);
    let backend = start_daemon(Journal::in_memory());

    let mut stream =
        client::connect_retry(&addr, Duration::from_secs(10)).expect("connect to router");
    let mut reader = std::io::BufReader::new(stream.try_clone().expect("clone stream"));
    let mut line = String::new();

    // Health probe: an empty router answers with zero capacity.
    writeln!(stream, "{}", Frame::Ping.encode()).expect("send ping");
    reader.read_line(&mut line).expect("read pong");
    assert_eq!(
        Frame::parse(line.trim_end()),
        Ok(Frame::Pong {
            workers: 0,
            results: 0
        })
    );

    // Register the daemon; the router health-checks and admits it.
    let register = Frame::RegisterBackend {
        addr: backend.clone(),
    };
    writeln!(stream, "{}", register.encode()).expect("send register");
    line.clear();
    reader.read_line(&mut line).expect("read registration");
    assert_eq!(
        Frame::parse(line.trim_end()),
        Ok(Frame::BackendRegistered {
            addr: backend.clone(),
            backends: 1
        })
    );
    assert_eq!(router.backend_states(), vec![(backend.clone(), true)]);

    // Registering a dead address is refused.
    let bogus = Frame::RegisterBackend {
        addr: "127.0.0.1:1".to_string(),
    };
    writeln!(stream, "{}", bogus.encode()).expect("send bogus register");
    line.clear();
    reader.read_line(&mut line).expect("read refusal");
    assert!(matches!(
        Frame::parse(line.trim_end()),
        Ok(Frame::Error { .. })
    ));

    // The freshly registered backend serves jobs.
    let spec = SubmitSpec::new(vec![Preset::BaseOpen], vec![Workload::WebSearch], opts());
    let outcome = client::submit(&mut stream, &spec).expect("routed job after registration");
    assert_eq!(outcome.to_csv(), client::local_csv(&spec, 1));
}

/// `GET /metrics` on the router port: shared `bump_*` families plus the
/// per-backend pool series, cache counters, and routing totals.
#[test]
fn metrics_endpoint_serves_router_families_with_backend_series() {
    use std::io::Read as _;
    let backend = start_daemon(Journal::in_memory());
    let (_router, addr) = start_router(vec![backend.clone()], 64);
    // One routed job first so the counters have moved.
    let spec = SubmitSpec::new(vec![Preset::BaseOpen], vec![Workload::WebSearch], opts());
    let mut stream =
        client::connect_retry(&addr, Duration::from_secs(10)).expect("connect to router");
    client::submit(&mut stream, &spec).expect("warm-up routed job");
    let mut http = std::net::TcpStream::connect(&addr).expect("scrape connect");
    http.write_all(b"GET /metrics HTTP/1.0\r\n\r\n")
        .expect("send scrape");
    let mut response = String::new();
    http.read_to_string(&mut response).expect("read scrape");
    assert!(response.starts_with("HTTP/1.0 200 OK\r\n"), "{response}");
    for family in [
        "bump_conns_open",
        "bump_jobs_total 1",
        "bumpr_backends 1",
        "bumpr_backends_alive 1",
        "bumpr_cache_entries 1",
        "bumpr_dispatched_cells_total 1",
        "bumpr_failovers_total 0",
    ] {
        assert!(response.contains(family), "missing {family}:\n{response}");
    }
    // The per-backend series carries the backend address as a label.
    assert!(
        response.contains(&format!("bumpr_backend_alive{{addr=\"{backend}\"}} 1")),
        "{response}"
    );
    assert!(
        response.contains(&format!("bumpr_backend_workers{{addr=\"{backend}\"}}")),
        "{response}"
    );
}

/// The health sweep survives a backend that is plain unreachable (the
/// close cousin of a panicked ping thread, unit-tested in the router):
/// a job still routes to the survivor and the dead address is reported
/// unhealthy rather than taking the sweep down.
#[test]
fn health_sweep_survives_unreachable_backends_and_routes_to_the_survivor() {
    let survivor = start_daemon(Journal::in_memory());
    let (router, addr) = start_router(vec!["127.0.0.1:1".to_string(), survivor.clone()], 64);
    let spec = SubmitSpec::new(vec![Preset::BaseOpen], vec![Workload::WebSearch], opts());
    let mut stream =
        client::connect_retry(&addr, Duration::from_secs(10)).expect("connect to router");
    let outcome = client::submit(&mut stream, &spec).expect("job routes around the dead address");
    assert_eq!(outcome.to_csv(), client::local_csv(&spec, 1));
    let states = router.backend_states();
    assert_eq!(
        states
            .iter()
            .find(|(a, _)| a == "127.0.0.1:1")
            .map(|(_, ok)| *ok),
        Some(false),
        "the unreachable backend must be marked dead, not crash the sweep"
    );
    assert_eq!(
        states
            .iter()
            .find(|(a, _)| *a == survivor)
            .map(|(_, ok)| *ok),
        Some(true)
    );
}

/// The tracing acceptance path: a traced batched job through a router
/// over two live backends must come back with one coherent trace —
/// spans from the router and both backends under the submitter's trace
/// id, per-cell queue-wait/execution spans, engine phase attributes,
/// and a parent chain that hangs every backend span under a router
/// dispatch span. The router's in-process registry must serve the same
/// trace by job id (what `GET /trace/<job>` renders for the CI smoke).
#[test]
fn traced_job_collects_spans_from_router_and_both_backends_under_one_trace() {
    use bump_serve::trace::{ActiveSpan, Registry, TraceContext, TraceId};

    let b1 = start_daemon(Journal::in_memory());
    let b2 = start_daemon(Journal::in_memory());
    let (_router, addr) = start_router(vec![b1, b2], 64);

    let trace = TraceId::generate();
    let root = ActiveSpan::begin(trace, None, "submit", "bumpc");
    // Two equal-cost units over two backends: the load balancer puts
    // one on each, so the trace must cover both.
    let batch = SubmitBatch {
        jobs: vec![SubmitSpec::new(
            vec![Preset::BaseOpen, Preset::Bump],
            vec![Workload::WebSearch],
            opts(),
        )],
        trace: Some(TraceContext {
            trace,
            parent: root.id(),
        }),
        telemetry: None,
    };
    let mut stream =
        client::connect_retry(&addr, Duration::from_secs(10)).expect("connect to router");
    let outcome = client::submit_batch(&mut stream, &batch).expect("traced job");
    assert_eq!(outcome.cells.len(), 2);
    let spans = &outcome.spans;
    assert!(!spans.is_empty(), "traced job must return spans");
    assert!(
        spans.iter().all(|s| s.trace == trace),
        "every span shares the submitter's trace id"
    );
    for service in ["bumpr", "bumpd"] {
        assert!(
            spans.iter().any(|s| s.service == service),
            "no spans from {service}"
        );
    }
    for name in [
        "route_job",
        "cache_lookup",
        "dispatch",
        "run_job",
        "journal_lookup",
        "queue_wait",
        "cell_execute",
        "journal_append",
    ] {
        assert!(spans.iter().any(|s| s.name == name), "no {name:?} span");
    }

    // Both backends contributed: two dispatch spans to distinct
    // addresses, and every backend root hangs under one of them.
    let dispatches: Vec<_> = spans.iter().filter(|s| s.name == "dispatch").collect();
    assert_eq!(dispatches.len(), 2, "one dispatch per backend");
    let addrs: std::collections::HashSet<_> = dispatches
        .iter()
        .flat_map(|s| s.attrs.iter())
        .filter(|(k, _)| k == "addr")
        .map(|(_, v)| v.clone())
        .collect();
    assert_eq!(addrs.len(), 2, "dispatches target distinct backends");
    let dispatch_ids: Vec<_> = dispatches.iter().map(|s| s.id).collect();
    let backend_roots: Vec<_> = spans.iter().filter(|s| s.name == "run_job").collect();
    assert_eq!(backend_roots.len(), 2, "one run_job root per backend");
    for r in &backend_roots {
        assert!(
            r.parent.map(|p| dispatch_ids.contains(&p)) == Some(true),
            "run_job must parent under a router dispatch span"
        );
    }

    // Per-cell spans: one queue_wait + cell_execute pair per cell,
    // and traced cells ran with the engine phase profiler on.
    let execs: Vec<_> = spans.iter().filter(|s| s.name == "cell_execute").collect();
    assert_eq!(execs.len(), 2, "one cell_execute per simulated cell");
    for e in &execs {
        assert!(e.end_us >= e.start_us);
        assert!(
            e.attrs.iter().any(|(k, _)| k.starts_with("phase.")),
            "cell_execute must carry engine phase attributes: {:?}",
            e.attrs
        );
        assert!(e.attrs.iter().any(|(k, _)| k == "label"));
    }

    // The router's registry resolves the same trace by trace id (the
    // process-local half of GET /trace/<id>).
    let registered = Registry::global()
        .resolve(&trace.to_hex())
        .and_then(|t| Registry::global().spans(t))
        .expect("router registry holds the trace");
    assert!(
        registered.iter().any(|s| s.service == "bumpr")
            && registered.iter().any(|s| s.service == "bumpd"),
        "registry view spans router and backends"
    );
}
