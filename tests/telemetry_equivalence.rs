//! Differential equivalence for the sim-time telemetry sampler: with
//! telemetry on, the event-driven engine must emit the *byte-identical*
//! gauge series the cycle-accurate oracle emits — every sample instant,
//! every gauge, including samples that land inside fast-forwarded null
//! spans (where the event engine must integrate bulk-charged stall and
//! idle accounting across skipped sample boundaries) and inside parked
//! retry storms (where queue depth and park depth are derived from
//! coalesced batches instead of per-request events).

use bump_sim::{
    config_for, run_experiment_with_config_instrumented, series_to_json, Engine, Preset,
    RunOptions, TelemetrySeries,
};
use bump_workloads::Workload;

fn opts(engine: Engine, seed: u64) -> RunOptions {
    RunOptions {
        cores: 2,
        warmup_instructions: 30_000,
        measure_instructions: 30_000,
        max_cycles: 3_000_000,
        seed,
        small_llc: true,
        engine,
    }
}

fn run(preset: Preset, workload: Workload, o: RunOptions, stride: u64) -> TelemetrySeries {
    let r = run_experiment_with_config_instrumented(
        config_for(preset, workload, o),
        o,
        false,
        Some(stride),
    );
    r.telemetry.expect("telemetry enabled")
}

fn assert_series_identical(preset: Preset, workload: Workload, seed: u64, stride: u64) {
    let oracle = run(preset, workload, opts(Engine::Cycle, seed), stride);
    let event = run(preset, workload, opts(Engine::Event, seed), stride);
    let what = format!(
        "{} x {} (seed {seed}, stride {stride})",
        preset.name(),
        workload.name()
    );
    assert!(oracle.points.len() > 1, "{what}: oracle sampled nothing");
    oracle.validate().unwrap_or_else(|e| panic!("{what}: {e}"));
    event.validate().unwrap_or_else(|e| panic!("{what}: {e}"));
    // Structural equality first (field-for-field via PartialEq), then
    // the rendered JSON — the wire/artifact bytes — for byte-identity.
    assert_eq!(oracle, event, "{what}: series diverge");
    assert_eq!(
        series_to_json(&oracle),
        series_to_json(&event),
        "{what}: rendered series bytes diverge"
    );
}

#[test]
fn every_preset_emits_identical_series_across_engines() {
    for preset in Preset::all() {
        assert_series_identical(preset, Workload::WebSearch, 42, 1024);
    }
}

#[test]
fn workload_slice_emits_identical_series_across_engines() {
    // Same slice as engine_equivalence: BuMP floods bulk reads,
    // Full-region drives the retry-storm coalescer (the hardest gauge
    // to keep identical), Base-close exercises the close-row scheduler.
    for (preset, workload, seed) in [
        (Preset::Bump, Workload::DataServing, 7),
        (Preset::Bump, Workload::MediaStreaming, 1),
        (Preset::FullRegion, Workload::WebServing, 7),
        (Preset::BaseClose, Workload::OnlineAnalytics, 3),
        (Preset::SmsVwq, Workload::SoftwareTesting, 11),
    ] {
        assert_series_identical(preset, workload, seed, 1024);
    }
}

#[test]
fn fine_strides_land_samples_inside_null_spans() {
    // A small stride forces samples to land inside fast-forwarded
    // quiet spans (skip_cycles / refresh-only skips), exercising the
    // span-carving and the integrated stall charge; it also overflows
    // the point cap, exercising compaction in both engines.
    for stride in [64, 257] {
        assert_series_identical(Preset::Bump, Workload::WebSearch, 42, stride);
        assert_series_identical(Preset::FullRegion, Workload::WebSearch, 42, stride);
    }
}

#[test]
fn telemetry_leaves_the_simulation_untouched() {
    // An instrumented run must simulate byte-identically to a plain
    // one: strip the telemetry field and compare full Debug renders.
    let o = opts(Engine::Event, 42);
    let cfg = config_for(Preset::Bump, Workload::WebSearch, o);
    let plain = run_experiment_with_config_instrumented(cfg.clone(), o, false, None);
    let mut inst = run_experiment_with_config_instrumented(cfg, o, false, Some(1024));
    assert!(plain.telemetry.is_none());
    assert!(inst.telemetry.is_some());
    inst.telemetry = None;
    assert_eq!(format!("{plain:?}"), format!("{inst:?}"));
}

#[test]
fn series_are_identical_for_any_thread_count() {
    // Telemetry rides the same spec-fixed-seed cells as every other
    // grid output, so the scheduler's thread count (and thus cell
    // completion order) must not leak into the series. Render the
    // whole grid's series on 1 and 3 threads and compare bytes.
    use bump_bench::experiment::{run_grid_instrumented_with, ExperimentGrid};
    use std::sync::{Arc, Mutex};
    let grid = ExperimentGrid::cartesian(
        &[Preset::BaseOpen, Preset::Bump],
        &[Workload::WebSearch, Workload::DataServing],
        opts(Engine::Event, 42),
    );
    let render = |threads: usize| {
        let collected: Arc<Mutex<Vec<(usize, String)>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&collected);
        run_grid_instrumented_with(&grid, threads, false, Some(1024), move |i, spec, report| {
            let series = report.telemetry.as_ref().expect("telemetry enabled");
            sink.lock()
                .unwrap()
                .push((i, format!("{}\n{}\n", spec.label, series_to_json(series))));
        });
        let mut rows = collected.lock().unwrap().clone();
        rows.sort_by_key(|(i, _)| *i);
        rows.into_iter().map(|(_, s)| s).collect::<String>()
    };
    let single = render(1);
    let parallel = render(3);
    assert!(!single.is_empty(), "grid produced no series");
    assert_eq!(single, parallel, "thread count leaked into telemetry");
}
