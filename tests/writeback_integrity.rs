//! Writeback integrity: eager writeback mechanisms (VWQ, BuMP, even
//! Full-region) must never lose or duplicate dirty data. Every DRAM
//! write must be justified by a dirtying event, and eager cleans must
//! match eager writebacks one-to-one.

use bump_sim::{Preset, System, SystemConfig};
use bump_workloads::Workload;

fn run_system(preset: Preset, workload: Workload) -> bump_sim::SimReport {
    let mut cfg = SystemConfig::small(preset, workload, 2);
    cfg.seed = 11;
    let mut sys = System::new(cfg);
    // No stat reset: measure from cold so write accounting is complete.
    sys.run(150_000, 10_000_000);
    sys.report()
}

#[test]
fn writes_reaching_dram_never_exceed_dirtying_events() {
    // Every DRAM write needs a prior L1 writeback into the LLC, except
    // re-cleans of lines dirtied again after an eager writeback.
    for preset in [Preset::BaseOpen, Preset::Vwq, Preset::Bump] {
        let r = run_system(preset, Workload::WebServing);
        let dram_writes = r.traffic.total_writes();
        let dirtying = r.llc.l1_writebacks;
        assert!(
            dram_writes <= dirtying + r.llc.redirty_after_eager + 1,
            "{preset}: {dram_writes} DRAM writes from only {dirtying} dirtying events"
        );
        assert!(dram_writes > 0, "{preset}: writes must flow");
    }
}

#[test]
fn eager_systems_do_not_inflate_write_traffic_much() {
    // Paper §V.B: BuMP increases writeback traffic by <10%.
    let base = run_system(Preset::BaseOpen, Workload::WebServing);
    let bump = run_system(Preset::Bump, Workload::WebServing);
    let b = base.traffic.total_writes() as f64;
    let e = bump.traffic.total_writes() as f64;
    assert!(
        e < b * 1.3,
        "BuMP write inflation too high: {b} -> {e} (paper: <10%)"
    );
}

#[test]
fn eager_cleans_match_eager_writebacks() {
    // Every eager DRAM write corresponds to exactly one LLC clean.
    for preset in [Preset::Vwq, Preset::Bump] {
        let r = run_system(preset, Workload::DataServing);
        assert_eq!(
            r.llc.eager_cleans, r.traffic.eager_writebacks,
            "{preset}: cleans and eager writebacks must match"
        );
    }
}

#[test]
fn baseline_has_no_eager_traffic() {
    let r = run_system(Preset::BaseOpen, Workload::DataServing);
    assert_eq!(r.traffic.eager_writebacks, 0);
    assert_eq!(r.llc.eager_cleans, 0);
}
