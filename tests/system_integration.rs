//! End-to-end integration tests across all crates: every preset builds,
//! runs, conserves its accounting identities, and respects DRAM timing
//! (checked by the independent auditor).

use bump_sim::{run_experiment_with_config, Engine, Preset, RunOptions, SystemConfig};
use bump_workloads::Workload;

fn quick() -> RunOptions {
    RunOptions {
        cores: 2,
        warmup_instructions: 40_000,
        measure_instructions: 40_000,
        max_cycles: 4_000_000,
        seed: 7,
        small_llc: true,
        engine: Engine::Event,
    }
}

fn audited(preset: Preset, workload: Workload) -> bump_sim::SimReport {
    let mut cfg = SystemConfig::small(preset, workload, quick().cores);
    cfg.seed = quick().seed;
    cfg.dram.audit = true;
    run_experiment_with_config(cfg, quick())
}

#[test]
fn every_preset_runs_and_respects_dram_timing() {
    for preset in Preset::all() {
        let r = audited(preset, Workload::WebServing);
        assert!(r.instructions >= 40_000, "{preset}: too few instructions");
        assert_eq!(r.audit_errors, 0, "{preset}: DRAM timing violations");
        assert!(r.ipc() > 0.0, "{preset}: zero IPC");
        assert!(r.traffic.total() > 0, "{preset}: no DRAM traffic");
    }
}

#[test]
fn every_workload_runs_under_bump() {
    for w in Workload::all() {
        let r = audited(Preset::Bump, w);
        assert_eq!(r.audit_errors, 0, "{w}: DRAM timing violations");
        assert!(
            r.traffic.bulk_reads > 0,
            "{w}: BuMP must stream at least once"
        );
        let b = r.bump.expect("bump stats");
        assert!(b.terminations > 0, "{w}: RDTT saw no terminations");
    }
}

#[test]
fn dram_accounting_identities_hold() {
    let r = audited(Preset::Bump, Workload::DataServing);
    // Row-hit ratio totals equal completed transactions.
    assert_eq!(
        r.dram.row_hit_ratio().total,
        r.dram.reads_completed + r.dram.writes_completed
    );
    // Server energy breakdown sums to its total.
    let e = r.server_energy;
    let sum = e.cores_j + e.llc_j + e.noc_j + e.mc_j + e.dram_j();
    assert!((sum - e.total_j()).abs() < 1e-12);
}

#[test]
fn coverage_counters_never_exceed_fills() {
    use bump_types::TrafficClass::BulkRead;
    let r = audited(Preset::Bump, Workload::WebSearch);
    let fills = r.llc.fills_by_class.get(BulkRead);
    let covered = r.llc.covered.get(BulkRead);
    let overfetch = r.llc.overfetch.get(BulkRead);
    assert!(
        covered + overfetch <= fills + r.llc.covered_late.get(BulkRead),
        "covered {covered} + overfetch {overfetch} vs fills {fills}"
    );
}

#[test]
fn mechanisms_only_add_speculative_traffic() {
    // The demand traffic a workload generates must be (nearly) the same
    // under every preset; mechanisms may only add speculative reads and
    // convert demand writebacks into eager ones.
    let base = audited(Preset::BaseOpen, Workload::OnlineAnalytics);
    let bump = audited(Preset::Bump, Workload::OnlineAnalytics);
    let base_wr = base.traffic.total_writes() as f64;
    let bump_wr = bump.traffic.total_writes() as f64;
    assert!(
        (bump_wr - base_wr).abs() / base_wr < 0.25,
        "total writes must be conserved within noise: {base_wr} vs {bump_wr}"
    );
}

#[test]
fn profiler_density_is_system_independent_on_baselines() {
    // Region density is a property of the access stream; the close- and
    // open-row baselines see the same stream.
    let a = audited(Preset::BaseClose, Workload::WebSearch);
    let b = audited(Preset::BaseOpen, Workload::WebSearch);
    let da = a.density.read_high_fraction();
    let db = b.density.read_high_fraction();
    assert!((da - db).abs() < 0.05, "density drifted: {da} vs {db}");
}

#[test]
fn ideal_bound_dominates_every_real_system() {
    for preset in [Preset::BaseOpen, Preset::Sms, Preset::Vwq] {
        let r = audited(preset, Workload::WebSearch);
        assert!(
            r.ideal_row_hit_ratio().value() + 0.05 >= r.row_hit_ratio().value(),
            "{preset}: ideal bound violated"
        );
    }
}
