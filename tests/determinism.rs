//! Determinism: identical configurations produce identical simulations,
//! and different seeds produce different (but statistically similar)
//! ones. This is what makes the reproduction's numbers reproducible.

use bump_sim::{run_experiment, Engine, Preset, RunOptions};
use bump_workloads::Workload;

fn opts(seed: u64) -> RunOptions {
    RunOptions {
        cores: 2,
        warmup_instructions: 30_000,
        measure_instructions: 30_000,
        max_cycles: 3_000_000,
        seed,
        small_llc: true,
        engine: Engine::Event,
    }
}

#[test]
fn same_seed_same_everything() {
    let a = run_experiment(Preset::Bump, Workload::WebSearch, opts(42));
    let b = run_experiment(Preset::Bump, Workload::WebSearch, opts(42));
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.instructions, b.instructions);
    assert_eq!(a.dram.reads_completed, b.dram.reads_completed);
    assert_eq!(a.dram.row_hit_ratio(), b.dram.row_hit_ratio());
    assert_eq!(a.traffic.bulk_reads, b.traffic.bulk_reads);
    assert_eq!(a.dram_energy.activations, b.dram_energy.activations);
    assert_eq!(a.noc.bytes, b.noc.bytes);
}

#[test]
fn different_seed_different_stream_similar_statistics() {
    let a = run_experiment(Preset::BaseOpen, Workload::WebServing, opts(1));
    let b = run_experiment(Preset::BaseOpen, Workload::WebServing, opts(2));
    assert_ne!(
        (a.cycles, a.dram.reads_completed),
        (b.cycles, b.dram.reads_completed),
        "different seeds should differ in detail"
    );
    let ra = a.row_hit_ratio().value();
    let rb = b.row_hit_ratio().value();
    assert!(
        (ra - rb).abs() < 0.10,
        "row-hit statistics should be stable across seeds: {ra} vs {rb}"
    );
}

/// The parallel experiment framework must not perturb results: running
/// the same grid with one worker and with many produces byte-identical
/// structured reports, and re-running the parallel grid reproduces
/// itself exactly.
#[test]
fn grid_runs_are_deterministic_under_parallelism() {
    use bump_bench::experiment::{run_grid, ExperimentGrid};

    let grid = ExperimentGrid::cartesian(
        &[Preset::BaseOpen, Preset::Bump],
        &[Workload::WebSearch, Workload::WebServing],
        opts(42),
    );
    let serial = run_grid(&grid, 1);
    let parallel = run_grid(&grid, 4);
    let parallel_again = run_grid(&grid, 4);
    assert_eq!(serial.to_csv(), parallel.to_csv());
    assert_eq!(parallel.to_csv(), parallel_again.to_csv());
    assert_eq!(serial.to_json(), parallel.to_json());
}

#[test]
fn reports_are_stable_across_reruns_for_all_presets() {
    for preset in [Preset::BaseClose, Preset::Sms, Preset::Vwq] {
        let a = run_experiment(preset, Workload::DataServing, opts(9));
        let b = run_experiment(preset, Workload::DataServing, opts(9));
        assert_eq!(a.cycles, b.cycles, "{preset}");
        assert_eq!(
            a.dram_energy.activations, b.dram_energy.activations,
            "{preset}"
        );
    }
}
