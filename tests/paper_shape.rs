//! Paper-shape tests: the qualitative results of the paper must hold on
//! small, fast runs — who wins, in which direction, with sane bands.
//! (Exact magnitudes are checked by the reproduction binaries at full
//! scale and recorded in EXPERIMENTS.md.)

use bump_sim::{run_experiment, Engine, Preset, RunOptions, SimReport};
use bump_workloads::Workload;

fn opts() -> RunOptions {
    RunOptions {
        cores: 4,
        warmup_instructions: 120_000,
        measure_instructions: 120_000,
        max_cycles: 12_000_000,
        seed: 42,
        small_llc: true,
        engine: Engine::Event,
    }
}

fn run(p: Preset, w: Workload) -> SimReport {
    run_experiment(p, w, opts())
}

#[test]
fn row_hit_ladder_matches_figure_13() {
    // Base-close < Base-open < SMS/VWQ < SMS+VWQ < BuMP on average.
    let avg = |p: Preset| -> f64 {
        Workload::all()
            .into_iter()
            .map(|w| run(p, w).row_hit_ratio().value())
            .sum::<f64>()
            / 6.0
    };
    let close = avg(Preset::BaseClose);
    let open = avg(Preset::BaseOpen);
    let smsvwq = avg(Preset::SmsVwq);
    let bump = avg(Preset::Bump);
    assert!(close < open, "close {close} < open {open}");
    assert!(open < smsvwq, "open {open} < sms+vwq {smsvwq}");
    assert!(smsvwq < bump, "sms+vwq {smsvwq} < bump {bump}");
    assert!(bump > 0.45, "BuMP row hits should approach the paper's 55%");
}

#[test]
fn bump_reduces_memory_energy_per_access() {
    // Paper: −34% vs Base-close, −23% vs Base-open (we accept a band).
    let mut vs_close = 0.0;
    let mut vs_open = 0.0;
    for w in Workload::all() {
        let close = run(Preset::BaseClose, w).energy_per_access_nj();
        let open = run(Preset::BaseOpen, w).energy_per_access_nj();
        let bump = run(Preset::Bump, w).energy_per_access_nj();
        vs_close += (1.0 - bump / close) / 6.0;
        vs_open += (1.0 - bump / open) / 6.0;
    }
    assert!(
        vs_close > 0.20,
        "BuMP must cut energy strongly vs Base-close, got {vs_close:.2}"
    );
    assert!(
        vs_open > 0.12,
        "BuMP must cut energy vs Base-open, got {vs_open:.2}"
    );
}

#[test]
fn bump_improves_average_throughput() {
    let mut ratio = 0.0;
    for w in Workload::all() {
        let base = run(Preset::BaseOpen, w).ipc();
        let bump = run(Preset::Bump, w).ipc();
        ratio += bump / base / 6.0;
    }
    assert!(
        ratio > 1.02,
        "BuMP must improve average IPC over Base-open, got {ratio:.3}x"
    );
}

#[test]
fn full_region_is_catastrophic() {
    // Paper: −67% throughput on average, ~4.3x overfetch.
    let w = Workload::DataServing;
    let base = run(Preset::BaseClose, w);
    let full = run(Preset::FullRegion, w);
    assert!(
        full.ipc() < 0.6 * base.ipc(),
        "Full-region must collapse: {} vs {}",
        full.ipc(),
        base.ipc()
    );
    assert!(
        full.read_overfetch_fraction() > 1.0,
        "Full-region overfetch must exceed 100%: {}",
        full.read_overfetch_fraction()
    );
}

#[test]
fn density_characterization_matches_section_3() {
    // Figure 5: most reads and most writes go to high-density regions.
    for w in Workload::all() {
        let r = run(Preset::BaseOpen, w);
        let rd = r.density.read_high_fraction();
        let wr = r.density.write_high_fraction();
        assert!(
            (0.40..=0.95).contains(&rd),
            "{w}: read high-density fraction {rd} out of band"
        );
        assert!(
            (0.55..=0.99).contains(&wr),
            "{w}: write high-density fraction {wr} out of band"
        );
    }
}

#[test]
fn write_share_matches_figure_3() {
    for w in Workload::all() {
        let r = run(Preset::BaseOpen, w);
        let f = r.traffic.write_fraction();
        assert!(
            (0.10..=0.45).contains(&f),
            "{w}: write share {f} far from the paper's 21-38%"
        );
    }
}

#[test]
fn bump_coverage_is_in_the_papers_band() {
    // Paper: 45-55% predicted reads (28% for Software Testing), ~63%
    // of writes; small overfetch.
    let mut pred_reads = 0.0;
    let mut pred_writes = 0.0;
    for w in Workload::all() {
        let r = run(Preset::Bump, w);
        pred_reads += r.predicted_read_fraction() / 6.0;
        pred_writes += r.predicted_write_fraction() / 6.0;
        assert!(
            r.read_overfetch_fraction() < 0.6,
            "{w}: overfetch {:.2} far above the paper's worst",
            r.read_overfetch_fraction()
        );
    }
    assert!(
        pred_reads > 0.25,
        "average read coverage too low: {pred_reads:.2}"
    );
    assert!(
        pred_writes > 0.40,
        "average write coverage too low: {pred_writes:.2}"
    );
}

#[test]
fn software_testing_is_bumps_hardest_workload() {
    // §V.B: RDTT conflicts cap coverage on Software Testing; its row-hit
    // gain is the smallest of the six (Table IV: 34% vs 54-64%).
    let st = run(Preset::Bump, Workload::SoftwareTesting);
    let ws = run(Preset::Bump, Workload::WebSearch);
    assert!(
        st.row_hit_ratio().value() < ws.row_hit_ratio().value(),
        "Software Testing should trail Web Search"
    );
}

#[test]
fn sms_beats_stride_on_irregular_footprints() {
    // §II.C: SMS captures irregular access patterns the stride
    // prefetcher cannot.
    let w = Workload::WebSearch; // irregular index-page walks
    let base = run(Preset::BaseOpen, w);
    let sms = run(Preset::Sms, w);
    assert!(
        sms.row_hit_ratio().value() > base.row_hit_ratio().value() + 0.05,
        "SMS must clearly improve row locality on irregular scans"
    );
}
