//! Golden-report snapshot: a small set of representative cells is
//! pinned, row for row, to `results/golden/engine_golden.csv`. Both
//! engines must regenerate the file byte-identically, so silent drift
//! in either engine — or an accidental semantic change anywhere in the
//! core/cache/DRAM stack — fails here with a diff instead of skewing
//! figures quietly.
//!
//! To re-bless after an *intentional* semantic change:
//!
//! ```text
//! BUMP_BLESS_GOLDEN=1 cargo test --test golden_reports
//! ```

use bump_bench::experiment::{run_grid, ExperimentGrid, ExperimentSpec};
use bump_sim::{Engine, Preset, RunOptions};
use bump_workloads::Workload;
use std::path::PathBuf;

fn golden_options(engine: Engine) -> RunOptions {
    RunOptions {
        cores: 2,
        warmup_instructions: 30_000,
        measure_instructions: 30_000,
        max_cycles: 3_000_000,
        seed: 42,
        small_llc: true,
        engine,
    }
}

/// Four mechanisms and a spread of workloads: the close-row baseline,
/// the open-row baseline, both prefetch baselines with VWQ, the
/// Full-region strawman, and BuMP itself.
fn golden_grid(engine: Engine) -> ExperimentGrid {
    let opts = golden_options(engine);
    let mut grid = ExperimentGrid::new();
    for (preset, workload) in [
        (Preset::BaseClose, Workload::WebSearch),
        (Preset::BaseOpen, Workload::DataServing),
        (Preset::SmsVwq, Workload::MediaStreaming),
        (Preset::Vwq, Workload::OnlineAnalytics),
        (Preset::FullRegion, Workload::SoftwareTesting),
        (Preset::Bump, Workload::WebSearch),
    ] {
        grid.push(ExperimentSpec::new(preset, workload, opts));
    }
    grid
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("results")
        .join("golden")
        .join("engine_golden.csv")
}

#[test]
fn golden_cells_match_committed_snapshot_under_both_engines() {
    let path = golden_path();
    if std::env::var_os("BUMP_BLESS_GOLDEN").is_some() {
        let grid = golden_grid(Engine::Event);
        let csv = run_grid(&grid, 1).to_csv();
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &csv).unwrap();
        eprintln!("blessed {} ({} bytes)", path.display(), csv.len());
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {} ({e}); run with BUMP_BLESS_GOLDEN=1 to create it",
            path.display()
        )
    });
    for engine in [Engine::Event, Engine::Cycle] {
        let grid = golden_grid(engine);
        let csv = run_grid(&grid, 1).to_csv();
        assert_eq!(
            csv, golden,
            "{engine} engine drifted from the golden snapshot; if the \
             change is intentional, re-bless with BUMP_BLESS_GOLDEN=1"
        );
    }
}
