//! End-to-end `bumpd`/`bumpc` tests: results streamed over TCP are
//! byte-identical to an in-process `run_grid` of the same grid,
//! re-submission resumes from the journal (including across a daemon
//! restart), malformed lines get `error` frames without killing the
//! connection, and a second client's small job finishes before a
//! concurrently running sweep.

use bump_bench::experiment::run_grid;
use bump_serve::client;
use bump_serve::daemon::Daemon;
use bump_serve::eventloop::ServeConfig;
use bump_serve::journal::Journal;
use bump_serve::proto::{Frame, SubmitSpec};
use bump_sim::{Engine, Preset, RunOptions, Scenario};
use bump_workloads::Workload;
use std::io::{BufRead as _, Read as _, Write as _};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn opts() -> RunOptions {
    RunOptions {
        cores: 2,
        warmup_instructions: 30_000,
        measure_instructions: 30_000,
        max_cycles: 3_000_000,
        seed: 42,
        small_llc: true,
        engine: Engine::Event,
    }
}

fn temp_journal(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("bumpd-e2e-{}-{name}.journal", std::process::id()))
}

/// Binds a loopback listener, spawns the daemon on it, and returns the
/// address to dial.
fn start(daemon: &Arc<Daemon>) -> String {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr").to_string();
    daemon.spawn(listener);
    addr
}

#[test]
fn streamed_results_are_byte_identical_and_resume_from_the_journal() {
    let journal_path = temp_journal("identity");
    let _ = std::fs::remove_file(&journal_path);
    let daemon = Daemon::new(2, Journal::open(&journal_path).expect("open journal"));
    let addr = start(&daemon);

    // Two presets x one workload x two seed replicas = 4 cells.
    let spec = SubmitSpec {
        presets: vec![Preset::BaseOpen, Preset::Bump],
        workloads: vec![Workload::WebSearch],
        options: opts(),
        scenario: Scenario::default(),
        seeds: 2,
        resume: true,
    };
    let direct = run_grid(&spec.to_grid(), 2).to_csv();

    let mut stream =
        client::connect_retry(&addr, Duration::from_secs(10)).expect("connect to daemon");
    let outcome = client::submit(&mut stream, &spec).expect("first submission");
    assert_eq!(outcome.cells.len(), 4);
    assert_eq!(outcome.cached(), 0, "cold journal serves nothing");
    assert!(outcome.cells.iter().any(|c| c.label.ends_with("#s1")));
    assert_eq!(
        outcome.to_csv(),
        direct,
        "streamed rows must be byte-identical to an in-process run_grid"
    );

    // Same connection, same spec: every cell resumes from the journal.
    let resumed = client::submit(&mut stream, &spec).expect("resumed submission");
    assert_eq!(resumed.cached(), 4, "identical spec must fully resume");
    assert_eq!(resumed.to_csv(), direct);

    // A different seed is a different identity: nothing resumes.
    let mut other = spec.clone();
    other.options.seed = 7;
    let fresh = client::submit(&mut stream, &other).expect("different-seed submission");
    assert_eq!(fresh.cached(), 0, "journal must not serve a different seed");
    assert_ne!(fresh.to_csv(), direct);

    // Restart: a new daemon on the same journal file still resumes.
    let daemon2 = Daemon::new(2, Journal::open(&journal_path).expect("reopen journal"));
    let addr2 = start(&daemon2);
    let mut stream2 =
        client::connect_retry(&addr2, Duration::from_secs(10)).expect("connect to restarted");
    let after_restart = client::submit(&mut stream2, &spec).expect("post-restart submission");
    assert_eq!(
        after_restart.cached(),
        4,
        "journal must survive a daemon restart"
    );
    assert_eq!(after_restart.to_csv(), direct);

    let _ = std::fs::remove_file(&journal_path);
}

#[test]
fn scenario_tagged_cells_stream_byte_identically_and_resume() {
    let journal_path = temp_journal("scenario");
    let _ = std::fs::remove_file(&journal_path);
    let daemon = Daemon::new(2, Journal::open(&journal_path).expect("open journal"));
    let addr = start(&daemon);

    let spec = SubmitSpec {
        presets: vec![Preset::BaseOpen, Preset::Bump],
        workloads: vec![Workload::WebSearch],
        options: opts(),
        scenario: Scenario::from_name("ddr4_2400").expect("known scenario"),
        seeds: 1,
        resume: true,
    };
    let direct = run_grid(&spec.to_grid(), 2).to_csv();
    assert!(
        direct.contains("@ddr4_2400"),
        "scenario tag must reach the CSV labels:\n{direct}"
    );

    let mut stream =
        client::connect_retry(&addr, Duration::from_secs(10)).expect("connect to daemon");
    let outcome = client::submit(&mut stream, &spec).expect("scenario submission");
    assert_eq!(outcome.cached(), 0, "cold journal serves nothing");
    assert_eq!(
        outcome.to_csv(),
        direct,
        "scenario cells must stream byte-identically to run_grid"
    );

    // Re-submission of the scenario-tagged spec resumes from the journal.
    let resumed = client::submit(&mut stream, &spec).expect("resumed scenario submission");
    assert_eq!(resumed.cached(), 2, "scenario cells must fully resume");
    assert_eq!(resumed.to_csv(), direct);

    // The default-scenario spec is a different identity: nothing resumes.
    let mut plain = spec.clone();
    plain.scenario = Scenario::default();
    let fresh = client::submit(&mut stream, &plain).expect("default-scenario submission");
    assert_eq!(
        fresh.cached(),
        0,
        "journal must not serve a scenario row for the default platform"
    );
    assert_ne!(fresh.to_csv(), direct);

    let _ = std::fs::remove_file(&journal_path);
}

#[test]
fn malformed_lines_get_error_frames_without_killing_the_connection() {
    let daemon = Daemon::new(1, Journal::in_memory());
    let addr = start(&daemon);
    let mut stream =
        client::connect_retry(&addr, Duration::from_secs(10)).expect("connect to daemon");

    let mut reader = std::io::BufReader::new(stream.try_clone().expect("clone stream for reading"));
    let good_submit = Frame::Submit(
        SubmitSpec::new(vec![Preset::BaseOpen], vec![Workload::WebSearch], opts()).into(),
    )
    .encode();
    // An unknown top-level key must be a strict protocol error — a
    // daemon that silently dropped (say) a misspelled "scenario" field
    // would simulate the wrong platform without anyone noticing.
    let unknown_key = good_submit.replacen('{', "{\"scenari0\":\"ddr4_2400\",", 1);
    for bad in [
        "this is not json",
        "{\"type\":\"warp\"}",
        "{\"type\":\"job_done\"}",
        unknown_key.as_str(),
    ] {
        writeln!(stream, "{bad}").expect("send malformed line");
        stream.flush().expect("flush");
        let mut line = String::new();
        reader.read_line(&mut line).expect("read error frame");
        match Frame::parse(line.trim_end()) {
            Ok(Frame::Error { .. }) => {}
            other => panic!("expected an error frame for {bad:?}, got {other:?}"),
        }
    }

    // The connection is still usable for a real submission.
    let spec = SubmitSpec::new(vec![Preset::BaseOpen], vec![Workload::WebSearch], opts());
    let outcome = client::submit(&mut stream, &spec).expect("submission after errors");
    assert_eq!(outcome.cells.len(), 1);
}

#[test]
fn second_clients_small_job_finishes_before_a_large_sweep() {
    // One worker makes the interleaving deterministic: large cells and
    // the small job's cell strictly alternate once both are queued.
    let daemon = Daemon::new(1, Journal::in_memory());
    let addr = start(&daemon);

    let large_spec = SubmitSpec::new(vec![Preset::BaseOpen], Workload::all().to_vec(), opts());
    let small_spec = SubmitSpec::new(vec![Preset::Bump], vec![Workload::WebSearch], opts());

    let large_done = Arc::new(AtomicBool::new(false));
    let (first_cell_tx, first_cell_rx) = std::sync::mpsc::channel::<()>();
    let large_thread = std::thread::spawn({
        let addr = addr.clone();
        let large_done = Arc::clone(&large_done);
        move || {
            let mut stream = client::connect_retry(&addr, Duration::from_secs(10))
                .expect("large client connects");
            let mut sent = false;
            let outcome = client::submit_with(&mut stream, &large_spec, &mut |frame| {
                if matches!(frame, Frame::CellResult(_)) && !sent {
                    sent = true;
                    let _ = first_cell_tx.send(());
                }
            })
            .expect("large sweep");
            large_done.store(true, Ordering::SeqCst);
            outcome
        }
    });

    // Submit the small job only once the sweep is demonstrably in
    // flight (first cell streamed, five still pending).
    first_cell_rx
        .recv_timeout(Duration::from_secs(120))
        .expect("large sweep must stream its first cell");
    let mut stream =
        client::connect_retry(&addr, Duration::from_secs(10)).expect("small client connects");
    let small = client::submit(&mut stream, &small_spec).expect("small job");
    assert_eq!(small.cells.len(), 1);
    assert!(
        !large_done.load(Ordering::SeqCst),
        "fairness: the one-cell job must finish while the six-cell sweep is still running"
    );

    let large = large_thread.join().expect("large client thread");
    assert_eq!(large.cells.len(), 6);

    // Cross-check the streamed small job against an in-process run.
    let direct = run_grid(&small_spec.to_grid(), 1).to_csv();
    assert_eq!(small.to_csv(), direct);
}

/// Threads currently in this test process (Linux procfs).
fn process_threads() -> usize {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("Threads:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|n| n.parse().ok())
        })
        .unwrap_or(0)
}

/// Slowloris regression: a flood of silent connections must neither
/// spawn a thread apiece nor starve a real client's submission.
#[test]
fn idle_connection_flood_does_not_block_a_real_submit() {
    let daemon = Daemon::new(1, Journal::in_memory());
    let addr = start(&daemon);
    let before = process_threads();
    const FLOOD: usize = 128;
    let mut idle: Vec<TcpStream> = Vec::with_capacity(FLOOD);
    for _ in 0..FLOOD {
        idle.push(TcpStream::connect(&addr).expect("idle connect"));
    }
    let after = process_threads();
    assert!(
        after < before + FLOOD / 2,
        "idle connections must not get a thread each ({before} -> {after} threads for {FLOOD} connections)"
    );
    // A real client submits and completes while every idle connection
    // stays open.
    let mut stream =
        client::connect_retry(&addr, Duration::from_secs(10)).expect("real client connects");
    let spec = SubmitSpec::new(vec![Preset::BaseOpen], vec![Workload::WebSearch], opts());
    let outcome = client::submit(&mut stream, &spec).expect("submit through the flood");
    assert_eq!(outcome.cells.len(), 1);
    drop(idle);
}

/// The idle-eviction deadline: a connection that never sends traffic
/// gets a clean `error` frame and a graceful close, not a pinned slot.
#[test]
fn silent_connections_are_evicted_after_the_idle_deadline() {
    let daemon = Daemon::new(1, Journal::in_memory());
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr").to_string();
    daemon.spawn_with(
        listener,
        ServeConfig {
            idle_timeout: Duration::from_millis(200),
            ..ServeConfig::default()
        },
    );
    let stream = TcpStream::connect(&addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    let mut reader = std::io::BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).expect("eviction notice");
    match Frame::parse(line.trim_end()) {
        Ok(Frame::Error { message }) => {
            assert!(message.contains("idle timeout"), "{message}")
        }
        other => panic!("expected an idle-timeout error frame, got {other:?}"),
    }
    line.clear();
    let n = reader.read_line(&mut line).expect("clean EOF after notice");
    assert_eq!(n, 0, "the connection closes after the eviction notice");
}

/// `GET /metrics` on the protocol port answers the Prometheus text
/// format with both the shared and the daemon-specific families.
#[test]
fn metrics_endpoint_serves_daemon_families() {
    let daemon = Daemon::new(2, Journal::in_memory());
    let addr = start(&daemon);
    // Run one job first so the counters have moved.
    let mut stream =
        client::connect_retry(&addr, Duration::from_secs(10)).expect("connect to daemon");
    let spec = SubmitSpec::new(vec![Preset::BaseOpen], vec![Workload::WebSearch], opts());
    client::submit(&mut stream, &spec).expect("warm-up job");
    let mut http = TcpStream::connect(&addr).expect("scrape connect");
    http.write_all(b"GET /metrics HTTP/1.0\r\n\r\n")
        .expect("send scrape");
    let mut response = String::new();
    http.read_to_string(&mut response).expect("read scrape");
    assert!(response.starts_with("HTTP/1.0 200 OK\r\n"), "{response}");
    assert!(response.contains("text/plain; version=0.0.4"), "{response}");
    for family in [
        "bump_conns_open",
        "bump_jobs_total",
        "bump_jobs_inflight",
        "bumpd_sched_workers 2",
        "bumpd_sched_queued_cells",
        "bumpd_journal_entries",
        "bumpd_cells_executed_total 1",
        "bumpd_journal_resume_rate",
    ] {
        assert!(response.contains(family), "missing {family}:\n{response}");
    }
}

/// Admission control: submits beyond the in-flight cap get a clean
/// `error` frame — the connection survives and works once the load
/// drains.
#[test]
fn submits_beyond_the_inflight_cap_get_a_graceful_error() {
    let daemon = Daemon::new(1, Journal::in_memory());
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr").to_string();
    daemon.spawn_with(
        listener,
        ServeConfig {
            inflight_cap: 1,
            ..ServeConfig::default()
        },
    );
    // Occupy the single in-flight slot with a multi-cell job, without
    // reading its results yet.
    let mut busy =
        client::connect_retry(&addr, Duration::from_secs(10)).expect("busy client connects");
    let sweep = SubmitSpec::new(vec![Preset::BaseOpen], Workload::all().to_vec(), opts());
    writeln!(busy, "{}", Frame::Submit(sweep.clone().into()).encode()).expect("send sweep");
    busy.flush().expect("flush sweep");
    let mut busy_reader = std::io::BufReader::new(busy.try_clone().expect("clone busy"));
    let mut line = String::new();
    busy_reader.read_line(&mut line).expect("job_accepted");
    assert!(
        matches!(Frame::parse(line.trim_end()), Ok(Frame::JobAccepted { .. })),
        "{line}"
    );
    // A second client's submit is rejected with an error frame, not a
    // connection reset.
    let mut turned_away =
        client::connect_retry(&addr, Duration::from_secs(10)).expect("second client connects");
    let spec = SubmitSpec::new(vec![Preset::Bump], vec![Workload::WebSearch], opts());
    writeln!(
        turned_away,
        "{}",
        Frame::Submit(spec.clone().into()).encode()
    )
    .expect("send");
    turned_away.flush().expect("flush");
    let mut reader = std::io::BufReader::new(turned_away.try_clone().expect("clone"));
    line.clear();
    reader.read_line(&mut line).expect("rejection frame");
    match Frame::parse(line.trim_end()) {
        Ok(Frame::Error { message }) => {
            assert!(message.contains("capacity"), "{message}")
        }
        other => panic!("expected a capacity error frame, got {other:?}"),
    }
    // Drain the sweep; afterwards the rejected client's connection is
    // still usable.
    loop {
        line.clear();
        busy_reader.read_line(&mut line).expect("sweep frame");
        if matches!(Frame::parse(line.trim_end()), Ok(Frame::JobDone { .. })) {
            break;
        }
    }
    // (Retry briefly: the slot is released a hair after job_done is
    // flushed, so one more rejection can still race in.)
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    let outcome = loop {
        match client::submit(&mut turned_away, &spec) {
            Ok(outcome) => break outcome,
            Err(_) if std::time::Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(100));
            }
            Err(e) => panic!("submit after the load drained: {e}"),
        }
    };
    assert_eq!(outcome.cells.len(), 1);
}
